#include "common/atomic_file.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/check.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define RIT_ATOMIC_FILE_POSIX 1
#else
#include <cstdio>
#define RIT_ATOMIC_FILE_POSIX 0
#endif

namespace rit {

namespace {

void create_parent_dirs(const std::string& path) {
  const std::filesystem::path p(path);
  if (!p.has_parent_path()) return;
  std::error_code ec;
  std::filesystem::create_directories(p.parent_path(), ec);
  // An existing directory is fine; a real failure surfaces on open below
  // with its own errno, which is the more actionable message.
}

#if RIT_ATOMIC_FILE_POSIX

std::string errno_text() {
  const int err = errno;
  return std::string(std::strerror(err)) + " (errno " + std::to_string(err) +
         ")";
}

// Writes all of `content`, retrying short writes and EINTR: a partial
// write() is legal on any POSIX system and silently truncates the artifact
// unless the caller loops.
void write_all(int fd, std::string_view content, const std::string& tmp) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = errno_text();
      ::close(fd);
      RIT_CHECK_MSG(false, "atomic write: short write to '"
                               << tmp << "' after " << off << "/"
                               << content.size() << " bytes: " << why);
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_dir_of(const std::string& path) {
  const std::filesystem::path p(path);
  const std::string dir =
      p.has_parent_path() ? p.parent_path().string() : std::string(".");
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best effort: some filesystems refuse O_RDONLY dirs
  ::fsync(fd);         // ditto: the rename itself already happened
  ::close(fd);
}

#endif  // RIT_ATOMIC_FILE_POSIX

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  RIT_CHECK_MSG(!path.empty(), "atomic write: empty path");
  create_parent_dirs(path);
#if RIT_ATOMIC_FILE_POSIX
  // Temp name is sibling + pid so concurrent processes targeting the same
  // path never clobber each other's staging file.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  RIT_CHECK_MSG(fd >= 0, "atomic write: cannot open temp file '"
                             << tmp << "': " << errno_text());
  write_all(fd, content, tmp);
  if (::fsync(fd) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    RIT_CHECK_MSG(false, "atomic write: fsync '" << tmp << "': " << why);
  }
  if (::close(fd) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    RIT_CHECK_MSG(false, "atomic write: close '" << tmp << "': " << why);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    RIT_CHECK_MSG(false, "atomic write: rename '" << tmp << "' -> '" << path
                                                  << "': " << why);
  }
  fsync_dir_of(path);
#else
  // Non-POSIX fallback: plain stdio write + rename. Not crash-atomic, but
  // keeps the API portable; every CI platform takes the POSIX path.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  RIT_CHECK_MSG(f != nullptr, "atomic write: cannot open temp file '" << tmp
                                                                      << "'");
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  RIT_CHECK_MSG(ok, "atomic write: short write to '"
                        << tmp << "' (" << written << "/" << content.size()
                        << " bytes)");
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  RIT_CHECK_MSG(!ec, "atomic write: rename '" << tmp << "' -> '" << path
                                              << "': " << ec.message());
#endif
}

}  // namespace rit
