#include "common/log.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>

#include "common/format_util.h"

namespace rit::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::atomic<int> g_format{static_cast<int>(Format::kText)};
std::mutex g_emit_mutex;

const char* tag(Level lv) {
  switch (lv) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}

const char* json_level(Level lv) {
  switch (lv) {
    case Level::kDebug:
      return "debug";
    case Level::kInfo:
      return "info";
    case Level::kWarn:
      return "warn";
    case Level::kError:
      return "error";
    case Level::kOff:
      return "off";
  }
  return "unknown";
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

void set_format(Format format) { g_format.store(static_cast<int>(format)); }

Format format() { return static_cast<Format>(g_format.load()); }

void emit(Level lv, std::string_view message) {
  emit(lv, message, std::span<const Field>{});
}

void emit(Level lv, std::string_view message, std::span<const Field> fields) {
  if (static_cast<int>(lv) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (format() == Format::kJson) {
    std::string line = "{\"ts_ms\":" + std::to_string(now_ms()) +
                       ",\"level\":\"" + json_level(lv) + "\",\"msg\":\"" +
                       json_escape(message) + "\"";
    for (const Field& f : fields) {
      line += ",\"" + json_escape(f.key) + "\":\"" + json_escape(f.value) +
              "\"";
    }
    line += "}";
    std::fprintf(stderr, "%s\n", line.c_str());
  } else {
    std::string line(message);
    for (const Field& f : fields) line += " " + f.key + "=" + f.value;
    std::fprintf(stderr, "[%s] %s\n", tag(lv), line.c_str());
  }
}

}  // namespace rit::log
