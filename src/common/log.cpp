#include "common/log.h"

#include <cstdio>
#include <mutex>
#include <string>

namespace rit::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::mutex g_emit_mutex;

const char* tag(Level lv) {
  switch (lv) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO ";
    case Level::kWarn:
      return "WARN ";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

void emit(Level lv, std::string_view message) {
  if (static_cast<int>(lv) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", tag(lv), static_cast<int>(message.size()),
               message.data());
}

}  // namespace rit::log
