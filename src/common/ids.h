// Strong identifier types shared across the library.
//
// The paper indexes three distinct spaces that are easy to confuse when they
// are all plain integers:
//   * users P_1..P_N            -> UserId
//   * task types tau_1..tau_m   -> TaskType
//   * per-type unit asks alpha_w (the output of Extract) -> AskIndex
// Wrapping them in distinct types lets the compiler reject cross-space mixes.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace rit {

/// Index of a crowdsensing user. The platform root of the incentive tree is
/// not a user and has no UserId.
struct UserId {
  std::uint32_t value{0};
  constexpr auto operator<=>(const UserId&) const = default;
};

/// Index of a task type (the paper's tau_i, an "area" in spectrum sensing).
struct TaskType {
  std::uint32_t value{0};
  constexpr auto operator<=>(const TaskType&) const = default;
};

/// Index into the per-type unit-ask vector produced by Extract (Alg. 2).
struct AskIndex {
  std::uint32_t value{0};
  constexpr auto operator<=>(const AskIndex&) const = default;
};

/// Node index inside an IncentiveTree. Node 0 is always the platform root;
/// user P_j lives at node j+1 by convention of tree builders.
struct NodeId {
  std::uint32_t value{0};
  constexpr auto operator<=>(const NodeId&) const = default;
};

constexpr NodeId kRootNode{0};

}  // namespace rit

template <>
struct std::hash<rit::UserId> {
  std::size_t operator()(const rit::UserId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
template <>
struct std::hash<rit::TaskType> {
  std::size_t operator()(const rit::TaskType& t) const noexcept {
    return std::hash<std::uint32_t>{}(t.value);
  }
};
template <>
struct std::hash<rit::NodeId> {
  std::size_t operator()(const rit::NodeId& n) const noexcept {
    return std::hash<std::uint32_t>{}(n.value);
  }
};
