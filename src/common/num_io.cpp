#include "common/num_io.h"

#include <charconv>
#include <cmath>
#include <system_error>

namespace rit {

std::optional<double> parse_double(std::string_view text) {
  bool negative = false;
  std::string_view body = text;
  if (!body.empty() && body.front() == '-') {
    negative = true;
    body.remove_prefix(1);
  }
  std::chars_format fmt = std::chars_format::general;
  if (body.size() > 2 && body[0] == '0' && (body[1] == 'x' || body[1] == 'X')) {
    fmt = std::chars_format::hex;
    body.remove_prefix(2);
  }
  if (body.empty()) return std::nullopt;
  double v = 0.0;
  const auto res = std::from_chars(body.data(), body.data() + body.size(), v,
                                   fmt);
  if (res.ec != std::errc{} || res.ptr != body.data() + body.size()) {
    return std::nullopt;
  }
  return negative ? -v : v;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), v, 10);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return v;
}

std::optional<std::uint32_t> parse_u32(std::string_view text) {
  const auto v = parse_u64(text);
  if (!v || *v > 0xffffffffULL) return std::nullopt;
  return static_cast<std::uint32_t>(*v);
}

std::string format_hex_double(double v) {
  char buf[64];
  char* p = buf;
  if (v < 0.0 || (v == 0.0 && std::signbit(v))) {
    // to_chars emits the '-' itself; the "0x" has to go between the sign
    // and the digits, so peel the sign off first.
    *p++ = '-';
    v = -v;
  }
  // inf/nan carry no "0x" prefix, matching printf "%a".
  if (std::isinf(v)) return std::string(buf, p) + "inf";
  if (std::isnan(v)) return std::string(buf, p) + "nan";
  *p++ = '0';
  *p++ = 'x';
  const auto res = std::to_chars(p, buf + sizeof(buf), v,
                                 std::chars_format::hex);
  return std::string(buf, res.ptr);
}

std::string format_double_g17(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

std::string format_double_shortest(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string format_double_fixed(double v, int precision) {
  char buf[512];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::fixed, precision);
  if (res.ec == std::errc{}) return std::string(buf, res.ptr);
  // DBL_MAX at a huge precision can exceed the stack buffer; retry heap-side.
  std::string big;
  big.resize(1200 + static_cast<std::size_t>(precision > 0 ? precision : 0));
  const auto res2 = std::to_chars(big.data(), big.data() + big.size(), v,
                                  std::chars_format::fixed, precision);
  big.resize(static_cast<std::size_t>(res2.ptr - big.data()));
  return big;
}

std::string format_u64(std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, 10);
  return std::string(buf, res.ptr);
}

std::string format_i64(std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, 10);
  return std::string(buf, res.ptr);
}

}  // namespace rit
