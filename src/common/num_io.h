// Locale-independent numeric IO for everything that crosses a file boundary.
//
// The C library's strtod/snprintf family reads and writes the radix
// character of the *current global locale*: a checkpoint written under
// de_DE.UTF-8 prints "0,5", and a ledger read under it rejects "0.5".
// Results, checkpoints, configs and ledgers must be byte-stable regardless
// of the host locale, so every parse/format on those paths goes through
// these std::from_chars/std::to_chars wrappers instead (both are specified
// to use the "C" locale unconditionally).
//
// The integer parsers are also strict where strtoull is forgiving: no
// leading whitespace, no '+'/'-' sign (strtoull silently wraps "-1" to
// 2^64-1), no trailing junk, and overflow is an error rather than a
// saturation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rit {

/// Parses a double. Accepts decimal ("1.5", "-2e3") and hex-float forms
/// with or without the "0x" prefix ("0x1.8p+3" as written by printf %a,
/// "1.8p+3" as written by std::to_chars), plus "inf"/"nan" with optional
/// sign. Rejects leading whitespace, a leading '+', trailing junk, and
/// values outside double range. Empty optional on any failure.
std::optional<double> parse_double(std::string_view text);

/// Parses an unsigned 64-bit integer from decimal digits only: any sign,
/// whitespace, trailing junk, or overflow past 2^64-1 is a failure.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// parse_u64 plus a range check against 2^32-1.
std::optional<std::uint32_t> parse_u32(std::string_view text);

/// Shortest round-trip hex-float with the "0x" prefix, matching what
/// printf "%a" historically wrote here ("0x1.8p+3"); parse_double reads
/// it back bit-exactly.
std::string format_hex_double(double v);

/// Decimal with 17 significant digits in the style of printf "%.17g":
/// round-trips every finite double.
std::string format_double_g17(double v);

/// Shortest decimal string that parses back to exactly `v` (to_chars
/// shortest form): "0.1" rather than "0.10000000000000001".
std::string format_double_shortest(double v);

/// Fixed-point decimal in the style of printf "%.*f".
std::string format_double_fixed(double v, int precision);

/// Decimal integer formatting. Functionally what std::to_string does for
/// integers, but kept here so every number on an IO boundary routes
/// through one audited surface (the boundary-io-num-io lint rule) — and
/// because std::to_string's *float* overloads are locale-dependent, so
/// banning the whole name keeps an accidental double from slipping through
/// an implicit conversion.
std::string format_u64(std::uint64_t v);
std::string format_i64(std::int64_t v);

}  // namespace rit
