#include "common/format_util.h"

#include <cstdio>

#include "common/num_io.h"

namespace rit {

std::string format_double(double v, int precision) {
  return format_double_fixed(v, precision);
}

std::string format_with_commas(long long v) {
  const bool negative = v < 0;
  unsigned long long mag =
      negative ? 0ULL - static_cast<unsigned long long>(v)
               : static_cast<unsigned long long>(v);
  std::string digits = format_u64(mag);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          // Integer-only format: no radix character for a locale to bend.
          // rit-lint: allow(no-locale-numeric)
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace rit
