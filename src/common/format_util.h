// Small string/number formatting helpers shared by reports, tests and CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rit {

/// Formats `v` with `precision` digits after the decimal point ("%.*f").
std::string format_double(double v, int precision = 3);

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string format_with_commas(long long v);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Left-pads `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters). Does not add the surrounding quotes.
std::string json_escape(std::string_view s);

}  // namespace rit
