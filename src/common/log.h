// Minimal leveled logger.
//
// The library itself logs nothing at Info by default; benches and examples
// raise the level for progress reporting. A global level (atomic) keeps the
// interface trivial — this is a single-process simulator, not a service.
//
// Two output formats, selectable at runtime with set_format():
//  * kText (default): the historical "[LEVEL] message k=v" stderr lines;
//  * kJson: one JSON object per line with "ts_ms", "level", "msg" and any
//    structured fields — for log shippers and machine post-processing.
#pragma once

#include <atomic>
#include <span>
#include <sstream>
#include <string>
#include <string_view>

namespace rit::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

enum class Format : int { kText = 0, kJson = 1 };

/// Sets the minimum level that will be emitted. Thread-safe.
void set_level(Level level);
Level level();

/// Selects the stderr line format (text by default). Thread-safe.
void set_format(Format format);
Format format();

/// A structured key=value payload attached to a log line.
struct Field {
  std::string key;
  std::string value;
};

/// Emits `message` to stderr with a level tag if `level` is enabled.
void emit(Level level, std::string_view message);

/// Same, with structured fields: rendered as trailing `key=value` pairs in
/// text mode and as additional JSON string properties in JSON mode.
void emit(Level level, std::string_view message,
          std::span<const Field> fields);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lv) : level_(lv) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { emit(level_, os_.str()); }
  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

// Swallows the LineStream expression so both arms of the RIT_LOG ternary
// have type void. operator& binds looser than operator<<, so the whole
// chained message is built before being voided.
struct Voidify {
  void operator&(const LineStream&) {}
};
}  // namespace detail

}  // namespace rit::log

// Guarded-expression form (the glog idiom): unlike the old `if/else`
// expansion this is a single expression, so `if (x) RIT_LOG_INFO << "y";
// else f();` binds the way it reads instead of capturing the `else`.
#define RIT_LOG(lv)                                                    \
  (static_cast<int>(lv) < static_cast<int>(::rit::log::level()))       \
      ? static_cast<void>(0)                                           \
      : ::rit::log::detail::Voidify() & ::rit::log::detail::LineStream(lv)

#define RIT_LOG_DEBUG RIT_LOG(::rit::log::Level::kDebug)
#define RIT_LOG_INFO RIT_LOG(::rit::log::Level::kInfo)
#define RIT_LOG_WARN RIT_LOG(::rit::log::Level::kWarn)
#define RIT_LOG_ERROR RIT_LOG(::rit::log::Level::kError)
