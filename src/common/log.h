// Minimal leveled logger.
//
// The library itself logs nothing at Info by default; benches and examples
// raise the level for progress reporting. A global level (atomic) keeps the
// interface trivial — this is a single-process simulator, not a service.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace rit::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that will be emitted. Thread-safe.
void set_level(Level level);
Level level();

/// Emits `message` to stderr with a level tag if `level` is enabled.
void emit(Level level, std::string_view message);

namespace detail {
class LineStream {
 public:
  explicit LineStream(Level lv) : level_(lv) {}
  LineStream(const LineStream&) = delete;
  LineStream& operator=(const LineStream&) = delete;
  ~LineStream() { emit(level_, os_.str()); }
  template <typename T>
  LineStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rit::log

#define RIT_LOG(lv)                                        \
  if (static_cast<int>(lv) < static_cast<int>(::rit::log::level())) \
    ;                                                      \
  else                                                     \
    ::rit::log::detail::LineStream(lv)

#define RIT_LOG_DEBUG RIT_LOG(::rit::log::Level::kDebug)
#define RIT_LOG_INFO RIT_LOG(::rit::log::Level::kInfo)
#define RIT_LOG_WARN RIT_LOG(::rit::log::Level::kWarn)
#define RIT_LOG_ERROR RIT_LOG(::rit::log::Level::kError)
