// Deterministic strided work distribution: the one primitive every
// multi-threaded sweep in the tree shares.
//
// Worker w handles items w, w+T, w+2T, ... — a static partition with no
// work stealing, so which worker ran which item is a pure function of
// (items, threads). Callers that keep per-worker accumulators and merge
// them in worker-index order therefore get results that are independent of
// scheduling (see sim/parallel.h for the accumulator harness built on
// top).
#pragma once

#include <cstdint>
#include <functional>

namespace rit {

/// Resolves a user-facing thread-count knob: 0 means "one per hardware
/// thread"; the result is clamped to [1, max(items, 1)] so no worker is
/// ever idle by construction.
unsigned resolve_threads(unsigned threads, std::uint64_t items);

/// Runs body(index, worker) for every index in [0, items), strided across
/// `threads` workers (after resolve_threads). With a resolved count of 1
/// the loop runs inline on the calling thread — no thread is spawned, so
/// the execution (and any RNG or accumulator state the body touches) is
/// bit-for-bit the plain serial loop.
void parallel_for_strided(
    std::uint64_t items, unsigned threads,
    const std::function<void(std::uint64_t, unsigned)>& body);

/// Runs body(begin, end, worker) over contiguous blocks that partition
/// [0, items): worker w gets [w*items/T, (w+1)*items/T). The partition is a
/// pure function of (items, threads), so per-worker results merged in
/// worker-index order are scheduling-independent, and a body with disjoint
/// per-index writes is bit-identical to the serial loop at any thread
/// count. Prefer this over the strided form for cache-contiguous array
/// passes (SoA hot paths); with a resolved count of 1 it runs inline.
void parallel_for_blocked(
    std::uint64_t items, unsigned threads,
    const std::function<void(std::uint64_t, std::uint64_t, unsigned)>& body);

}  // namespace rit
