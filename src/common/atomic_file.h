// Crash-safe file persistence: write-fsync-rename, the POSIX idiom that
// guarantees a reader (or a resumed process) sees either the old file or
// the complete new one, never a torn write. Every result writer in the
// tree (records, CSV, JSON exports, checkpoints) routes through here so a
// killed process cannot leave a truncated artifact behind.
#pragma once

#include <string>
#include <string_view>

namespace rit {

/// Atomically replaces `path` with `content`: writes a sibling temp file,
/// fsyncs it, renames it over the target, and fsyncs the directory. Parent
/// directories are created as needed. Throws rit::CheckFailure carrying the
/// errno context on any failure, including short writes.
void write_file_atomic(const std::string& path, std::string_view content);

}  // namespace rit
