#include "core/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/format_util.h"
#include "core/payment.h"

namespace rit::core {

double PaymentExplanation::total() const {
  double t = auction_payment;
  for (const ContributionLine& line : contributions) t += line.share;
  return t;
}

std::string PaymentExplanation::render() const {
  std::ostringstream os;
  os << "payment of P" << participant + 1 << " = "
     << format_double(total(), 4) << "\n";
  os << "  auction payment: " << format_double(auction_payment, 4) << "\n";
  if (contributions.empty()) {
    os << "  no solicitation rewards";
  } else {
    os << "  solicitation rewards from " << contributions.size()
       << " descendant(s):";
  }
  os << "\n";
  for (const ContributionLine& line : contributions) {
    os << "    P" << line.participant + 1 << " (type " << line.type.value
       << ", depth " << line.depth << "): share "
       << format_double(line.share, 4) << " of p^A = "
       << format_double(line.auction_payment, 4) << "\n";
  }
  if (same_type_excluded > 0) {
    os << "  (" << same_type_excluded
       << " same-type descendant(s) excluded by the t_i != t_j rule)\n";
  }
  return os.str();
}

PaymentExplanation explain_payment(const tree::IncentiveTree& tree,
                                   std::span<const TaskType> types,
                                   std::span<const double> auction_payments,
                                   double discount_base, std::uint32_t j) {
  RIT_CHECK(types.size() == tree.num_participants());
  RIT_CHECK(auction_payments.size() == types.size());
  RIT_CHECK(j < types.size());
  RIT_CHECK(discount_base > 0.0 && discount_base < 1.0);

  PaymentExplanation out;
  out.participant = j;
  out.auction_payment = auction_payments[j];
  const std::uint32_t node = tree::node_of_participant(j);
  for (std::uint32_t d : tree.descendants(node)) {
    const std::uint32_t i = tree::participant_of_node(d);
    if (types[i] == types[j]) {
      if (auction_payments[i] > 0.0) ++out.same_type_excluded;
      continue;
    }
    if (auction_payments[i] <= 0.0) continue;
    ContributionLine line;
    line.participant = i;
    line.type = types[i];
    line.depth = tree.depth(d);
    line.auction_payment = auction_payments[i];
    line.share = std::pow(discount_base, static_cast<double>(line.depth)) *
                 auction_payments[i];
    out.contributions.push_back(line);
  }
  std::sort(out.contributions.begin(), out.contributions.end(),
            [](const ContributionLine& a, const ContributionLine& b) {
              if (a.share != b.share) return a.share > b.share;
              return a.participant < b.participant;
            });
  return out;
}

namespace {
void report(AuditReport& r, const std::string& what) {
  r.ok = false;
  r.violations.push_back(what);
}
}  // namespace

AuditReport audit_payments(const tree::IncentiveTree& tree,
                           std::span<const Ask> asks, const RitResult& result,
                           double discount_base, double tolerance) {
  RIT_CHECK(asks.size() == tree.num_participants());
  RIT_CHECK(result.payment.size() == asks.size());
  RIT_CHECK(result.auction_payment.size() == asks.size());

  AuditReport r;
  const auto n = static_cast<std::uint32_t>(asks.size());
  for (std::uint32_t j = 0; j < n; ++j) {
    r.total_payment += result.payment[j];
    r.total_auction_payment += result.auction_payment[j];
  }
  r.solicitation_premium = r.total_payment - r.total_auction_payment;

  if (!result.success) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (result.payment[j] != 0.0 || result.auction_payment[j] != 0.0 ||
          result.allocation[j] != 0) {
        report(r, "failed run has non-zero payment/allocation for P" +
                      std::to_string(j + 1));
      }
    }
    return r;
  }

  std::vector<TaskType> types(n);
  for (std::uint32_t j = 0; j < n; ++j) types[j] = asks[j].type;
  const std::vector<double> derived = tree_payments_reference(
      tree, types, result.auction_payment, discount_base);

  for (std::uint32_t j = 0; j < n; ++j) {
    const double scale = 1.0 + std::abs(derived[j]);
    if (std::abs(derived[j] - result.payment[j]) > tolerance * scale) {
      report(r, "payment mismatch for P" + std::to_string(j + 1) +
                    ": reported " + format_double(result.payment[j], 9) +
                    ", derived " + format_double(derived[j], 9));
    }
    if (result.payment[j] < result.auction_payment[j] - tolerance) {
      report(r, "negative tree reward for P" + std::to_string(j + 1));
    }
    if (result.allocation[j] > asks[j].quantity) {
      report(r, "over-allocation for P" + std::to_string(j + 1));
    }
    if (result.allocation[j] == 0 && result.auction_payment[j] != 0.0) {
      report(r, "auction payment without allocation for P" +
                    std::to_string(j + 1));
    }
  }
  // The Sec. 7-C budget bound is a theorem only for discount bases <= 1/2:
  // a contributor at depth d feeds its d-1 ancestors (d-1) * base^d of its
  // own payment, and max_d (d-1) * base^d stays below 1 for base <= 1/2
  // (at 1/2 it peaks at 1/4) but exceeds 1 for base >~ 0.68; the discount
  // ablation shows the bound genuinely breaking around base 0.9.
  if (discount_base <= 0.5 &&
      r.solicitation_premium > r.total_auction_payment + tolerance) {
    report(r, "budget bound violated: premium " +
                  format_double(r.solicitation_premium, 6) +
                  " > auction total " +
                  format_double(r.total_auction_payment, 6));
  }
  if (r.solicitation_premium < -tolerance) {
    report(r, "negative solicitation premium");
  }
  return r;
}

}  // namespace rit::core
