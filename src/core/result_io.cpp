#include "core/result_io.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/num_io.h"

namespace rit::core {

namespace {
constexpr const char* kHeader = "ritcs-record v1";

std::string hex_double(double v) { return rit::format_hex_double(v); }

double parse_hex_double(const std::string& token, const char* what) {
  const auto v = rit::parse_double(token);
  RIT_CHECK_MSG(v.has_value(),
                "record: bad double for " << what << ": '" << token << "'");
  return *v;
}

std::uint64_t parse_u64(const std::string& token, const char* what) {
  const auto v = rit::parse_u64(token);
  RIT_CHECK_MSG(v.has_value(),
                "record: bad integer for " << what << ": '" << token << "'");
  return *v;
}

/// Reads the next non-empty line and checks it starts with `key`, returning
/// the remainder tokenized.
std::vector<std::string> expect_line(std::istream& in, const char* key) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) break;
  }
  RIT_CHECK_MSG(!line.empty(), "record: unexpected end of file, wanted '"
                                   << key << "'");
  std::istringstream ls(line);
  std::string head;
  ls >> head;
  RIT_CHECK_MSG(head == key, "record: expected '" << key << "', found '"
                                                  << head << "'");
  std::vector<std::string> tokens;
  std::string tok;
  while (ls >> tok) tokens.push_back(tok);
  return tokens;
}
}  // namespace

void write_record(const ExperimentRecord& record, std::ostream& out) {
  const auto n = record.asks.size();
  RIT_CHECK_MSG(record.tree_parents.size() == n + 1,
                "record: tree has " << record.tree_parents.size()
                                    << " nodes for " << n << " asks");
  RIT_CHECK(record.result.allocation.size() == n);
  RIT_CHECK(record.result.auction_payment.size() == n);
  RIT_CHECK(record.result.payment.size() == n);

  out << kHeader << "\n";
  out << "discount " << hex_double(record.discount_base) << "\n";
  out << "job";
  for (std::uint32_t d : record.job.demand_vector()) out << ' ' << d;
  out << "\n";
  out << "users " << n << "\n";
  for (const Ask& a : record.asks) {
    out << "ask " << a.type.value << ' ' << a.quantity << ' '
        << hex_double(a.value) << "\n";
  }
  out << "tree";
  for (std::uint32_t p : record.tree_parents) out << ' ' << p;
  out << "\n";
  const RitResult& r = record.result;
  out << "success " << (r.success ? 1 : 0) << "\n";
  out << "eta " << hex_double(r.eta) << "\n";
  out << "kmax " << r.k_max << "\n";
  out << "degraded " << (r.probability_degraded ? 1 : 0) << "\n";
  out << "achieved " << hex_double(r.achieved_probability) << "\n";
  out << "allocation";
  for (std::uint32_t x : r.allocation) out << ' ' << x;
  out << "\n";
  out << "auction_payment";
  for (double p : r.auction_payment) out << ' ' << hex_double(p);
  out << "\n";
  out << "payment";
  for (double p : r.payment) out << ' ' << hex_double(p);
  out << "\n";
}

void write_record_file(const ExperimentRecord& record,
                       const std::string& path) {
  // Records feed bit-exact replay (see replay_test); an interrupted write
  // must never leave a half-record that parses up to the truncation point.
  std::ostringstream out;
  write_record(record, out);
  rit::write_file_atomic(path, out.str());
}

ExperimentRecord read_record(std::istream& in) {
  std::string header;
  std::getline(in, header);
  RIT_CHECK_MSG(header == kHeader,
                "record: bad header '" << header << "' (want '" << kHeader
                                       << "')");
  ExperimentRecord rec;
  {
    const auto tokens = expect_line(in, "discount");
    RIT_CHECK(tokens.size() == 1);
    rec.discount_base = parse_hex_double(tokens[0], "discount");
  }
  {
    const auto tokens = expect_line(in, "job");
    RIT_CHECK_MSG(!tokens.empty(), "record: job needs at least one type");
    std::vector<std::uint32_t> demand;
    for (const auto& t : tokens) {
      demand.push_back(static_cast<std::uint32_t>(parse_u64(t, "job")));
    }
    rec.job = Job(std::move(demand));
  }
  std::size_t n = 0;
  {
    const auto tokens = expect_line(in, "users");
    RIT_CHECK(tokens.size() == 1);
    n = parse_u64(tokens[0], "users");
  }
  rec.asks.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const auto tokens = expect_line(in, "ask");
    RIT_CHECK_MSG(tokens.size() == 3, "record: ask wants 3 fields");
    rec.asks.push_back(
        Ask{TaskType{static_cast<std::uint32_t>(parse_u64(tokens[0], "ask type"))},
            static_cast<std::uint32_t>(parse_u64(tokens[1], "ask quantity")),
            parse_hex_double(tokens[2], "ask value")});
  }
  {
    const auto tokens = expect_line(in, "tree");
    RIT_CHECK_MSG(tokens.size() == n + 1,
                  "record: tree wants " << n + 1 << " parents, found "
                                        << tokens.size());
    for (const auto& t : tokens) {
      rec.tree_parents.push_back(
          static_cast<std::uint32_t>(parse_u64(t, "tree")));
    }
  }
  RitResult& r = rec.result;
  r.success = parse_u64(expect_line(in, "success").at(0), "success") != 0;
  r.eta = parse_hex_double(expect_line(in, "eta").at(0), "eta");
  r.k_max =
      static_cast<std::uint32_t>(parse_u64(expect_line(in, "kmax").at(0), "kmax"));
  r.probability_degraded =
      parse_u64(expect_line(in, "degraded").at(0), "degraded") != 0;
  r.achieved_probability =
      parse_hex_double(expect_line(in, "achieved").at(0), "achieved");
  {
    const auto tokens = expect_line(in, "allocation");
    RIT_CHECK_MSG(tokens.size() == n, "record: allocation size mismatch");
    for (const auto& t : tokens) {
      r.allocation.push_back(
          static_cast<std::uint32_t>(parse_u64(t, "allocation")));
    }
  }
  {
    const auto tokens = expect_line(in, "auction_payment");
    RIT_CHECK_MSG(tokens.size() == n, "record: auction_payment size mismatch");
    for (const auto& t : tokens) {
      r.auction_payment.push_back(parse_hex_double(t, "auction_payment"));
    }
  }
  {
    const auto tokens = expect_line(in, "payment");
    RIT_CHECK_MSG(tokens.size() == n, "record: payment size mismatch");
    for (const auto& t : tokens) {
      r.payment.push_back(parse_hex_double(t, "payment"));
    }
  }
  // Structural sanity: the tree must parse (throws otherwise).
  (void)rec.tree();
  return rec;
}

ExperimentRecord read_record_file(const std::string& path) {
  std::ifstream in(path);
  RIT_CHECK_MSG(in.good(), "cannot open record file: " << path);
  return read_record(in);
}

}  // namespace rit::core
