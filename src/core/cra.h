// CRA (Algorithm 1): the Collusion Resistant Auction.
//
// One CRA round allocates at most q tasks of one type among unit asks. It is
// the consensus-estimate construction of Goldberg & Hartline [12] adapted to
// a procurement (reverse) auction:
//
//   1. sample a random threshold s = min of a sparse Bernoulli sample of the
//      asks (every ask independently with probability 1/(q+m_i));
//   2. round the count of asks <= s *down to a randomized consensus value*
//      n_s in {2^(z+y) : z integer} with a single shared y ~ U[0,1). A
//      coalition of k bidders can move the raw count by at most k, which
//      only rarely moves the consensus value — this is what buys
//      k-truthfulness with high probability (Lemma 6.2);
//   3. keep the n_s cheapest asks (or, if n_s exceeds the q+m_i potential
//      winner budget, keep each of the n_s cheapest independently with
//      probability (q+m_i)/(2*n_s));
//   4. if still over budget, fall back to a (q+m_i+1)-st price auction;
//   5. if more than q asks survive, pick q winners uniformly at random.
//
// Winners are each allocated one task and paid the clearing price; losers
// get nothing. The clearing price is >= every winning ask value, which
// gives per-round individual rationality (Lemma 6.1).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "rng/rng.h"

namespace rit::core {

struct CraParams {
  /// q: number of tasks still unallocated for this type.
  std::uint32_t q{0};
  /// m_i: the job's total demand for this type (potential-winner budget is
  /// q + m_i).
  std::uint32_t m_i{0};
  EmptySamplePolicy empty_sample = EmptySamplePolicy::kAllAsks;
  /// kConsensus is the paper's Algorithm 1; kOrderStatistic replaces steps
  /// 1-4 with a deterministic (q+m_i+1)-st price rule (ablation only).
  PriceMode price_mode = PriceMode::kConsensus;
  /// Base c of the consensus grid {c^(z+y)}. The paper uses 2. A larger
  /// base widens the grid cells: a coalition moving the raw count by k
  /// changes the consensus value on a y-set of measure log_c(z/(z-k)) —
  /// SMALLER for larger c (more collusion protection) at the cost of
  /// rounding the winner count down more aggressively (fewer winners per
  /// round). bench_ablation_gridbase quantifies the trade-off.
  double consensus_grid_base = 2.0;
};

struct CraOutcome {
  /// won[w]: whether unit ask w was allocated one task this round.
  std::vector<bool> won;
  /// Payment per winning ask (the paper's s; 0 when there are no winners).
  double clearing_price{0.0};
  std::uint32_t num_winners{0};

  // --- diagnostics (tests and the ablation benches read these) ---
  /// Threshold drawn in step 1; the largest ask value when the sample was
  /// empty under EmptySamplePolicy::kAllAsks.
  double sample_min{0.0};
  /// Raw count of asks <= sample_min (the paper's z_s(alpha)).
  std::uint64_t raw_count{0};
  /// Consensus-rounded count (the paper's n_s).
  std::uint64_t consensus_count{0};
  /// Whether step 4 replaced the sampled threshold by a (q+m_i+1)-st price.
  bool used_budget_price{false};
};

/// Reusable scratch for run_cra. RIT runs one CRA round per type per
/// round-budget step, and a sweep runs millions of rounds; without reuse
/// every round rebuilds the `order`/`chosen` vectors (plus the Fisher-Yates
/// sampling pool) on the heap. Keep one workspace per thread and pass it to
/// every round: at steady state (buffers grown to the population size) a
/// round performs no heap allocation. Contents are scratch only — nothing
/// in here carries state between rounds.
struct CraWorkspace {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> chosen;
  std::vector<std::uint32_t> winners;
  std::vector<std::size_t> sample_pool;
  std::vector<std::size_t> sample_out;
};

/// Runs one CRA round over the unit-ask values `asks` (the alpha vector
/// produced by Extract). Deterministic given `rng` state.
CraOutcome run_cra(std::span<const double> asks, const CraParams& params,
                   rng::Rng& rng);

/// Allocation-free form: identical draws and outcome, but all scratch lives
/// in `ws` and the outcome is written into `out` (whose `won` vector is
/// reused). The convenience overload above delegates to this with a fresh
/// workspace.
void run_cra(std::span<const double> asks, const CraParams& params,
             rng::Rng& rng, CraWorkspace& ws, CraOutcome& out);

/// The consensus rounding of Lemma 6.2 in isolation: the largest value
/// base^(z+y) <= count (z integer), or 0 if count == 0 or every such value
/// floors to zero. Exposed for direct unit testing.
std::uint64_t consensus_round_down(std::uint64_t count, double y,
                                   double base = 2.0);

}  // namespace rit::core
