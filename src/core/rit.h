// RIT (Algorithm 3): the full Robust Incentive Tree mechanism.
//
// Phase 1 (auction): for every task type tau_i, run CRA rounds over the
// still-unconsumed unit asks until either all m_i tasks are allocated or the
// per-type round budget `max` is exhausted. The budget is what makes the
// whole phase (K_max, H)-truthful: each round is K_max-truthful with
// probability >= P_round (Lemma 6.2), the per-type target is
// eta = H^(1/m), and P_round^max >= eta (Lemma 6.3).
//
// Phase 2 (payment determination): if and only if the job was fully
// allocated, pay every participant its auction payment plus the depth-
// discounted auction payments of its different-type descendants
// (payment.h). Otherwise the run fails closed: all allocations and
// payments are zeroed (Alg. 3 line 27), because a partially-paid partial
// allocation would break the incentive analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/config.h"
#include "core/cra.h"
#include "core/extract.h"
#include "core/payment.h"
#include "core/types.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::core {

/// Round budget for one task type (Alg. 3 line 7 / Lemma 6.3).
struct RoundBudget {
  /// Worst-case (q -> 0) per-round truthfulness lower bound of Lemma 6.2.
  double per_round_bound{0.0};
  /// Maximum number of CRA rounds for this type.
  std::uint32_t max_rounds{0};
  /// True when per_round_bound was non-positive or the floor() came out 0
  /// and RitConfig::clamp_min_one_round forced a round anyway — the H
  /// guarantee does not hold for such parameters (DESIGN.md ambiguity #3).
  bool degraded{false};
};

/// Computes the Lemma 6.2 bound and the resulting round budget.
/// eta is the per-type truthfulness target H^(1/m).
RoundBudget compute_round_budget(std::uint32_t m_i, std::uint32_t k_max,
                                 double eta, const RitConfig& config);

/// One CRA round as seen from outside (recorded when
/// RitConfig::record_round_trace is set).
struct RoundTrace {
  std::uint32_t round{0};  // 0-based within the type
  double clearing_price{0.0};
  std::uint32_t winners{0};
  std::uint32_t q_before{0};  // unallocated tasks entering the round
  std::uint64_t raw_count{0};
  std::uint64_t consensus_count{0};
  bool used_budget_price{false};
};

/// Per-type diagnostics of the auction phase.
struct TypeAuctionInfo {
  TaskType type;
  std::uint32_t demanded{0};   // m_i
  std::uint32_t allocated{0};  // tasks actually assigned
  std::uint32_t rounds_used{0};
  RoundBudget budget;
  /// Lower bound on the probability that every round run for this type was
  /// K_max-truthful: per_round_bound ^ rounds_used (0 when the bound is
  /// vacuous). Under kTheoretical this is >= eta by construction; under
  /// kRunToCompletion it reports how much of the guarantee was spent.
  double achieved_bound{1.0};
  /// Per-round trace; empty unless RitConfig::record_round_trace.
  std::vector<RoundTrace> rounds;
};

struct RitResult {
  /// True iff every task of the job was allocated (payments are live).
  bool success{false};

  /// x_j: tasks allocated to participant j. Zeroed on failure.
  std::vector<std::uint32_t> allocation;
  /// p_j^A: auction payments (phase 1). Zeroed on failure.
  std::vector<double> auction_payment;
  /// p_j: final payments (phase 2). Zeroed on failure; equal to
  /// auction_payment when the tree carries no cross-type descendants.
  std::vector<double> payment;

  std::vector<TypeAuctionInfo> type_info;
  /// eta = H^(1/m) actually used.
  double eta{0.0};
  /// K_max the budget formula used (observed max k_j unless overridden).
  std::uint32_t k_max{0};
  /// True if any type's round budget was degraded (see RoundBudget) or, in
  /// kRunToCompletion mode, any type spent more rounds than the H-budget.
  bool probability_degraded{false};
  /// Product of the per-type achieved bounds: a lower bound on the
  /// probability that the whole auction phase was K_max-truthful. Equals at
  /// least H under kTheoretical with healthy parameters.
  double achieved_probability{1.0};

  /// U_j = p_j - x_j * c_j for participant j given its true unit cost.
  double utility_of(std::uint32_t participant, double unit_cost) const {
    return core::utility(payment[participant], allocation[participant],
                         unit_cost);
  }
  /// Same, but paying only the auction payment (the "auction phase" series
  /// of Figs. 6-8).
  double auction_utility_of(std::uint32_t participant,
                            double unit_cost) const {
    return core::utility(auction_payment[participant],
                         allocation[participant], unit_cost);
  }

  double total_payment() const;
  double total_auction_payment() const;
};

/// Reusable scratch for run_rit / run_auction_phase. One mechanism run
/// executes many CRA rounds, and a sweep executes many mechanism runs;
/// keeping one workspace per thread means the per-round buffers (extract's
/// alpha vector, CRA's order/chosen scratch, the remaining-quantity vector)
/// are heap-allocated once and then reused at their high-water capacity.
/// Contents are scratch only — nothing carries state between runs.
struct RitWorkspace {
  CraWorkspace cra;
  CraOutcome round;
  ExtractedAsks alpha;
  /// Per-type CSR over the ask vector, rebuilt once per auction so each
  /// round's extraction touches only its own type's askers.
  AskTypeIndex type_index;
  PaymentWorkspace payment;
  std::vector<std::uint32_t> remaining;
  std::vector<TaskType> types;
};

/// Runs the complete mechanism. `asks[j]` is participant j's sealed bid;
/// participant j sits at tree node j+1. Throws CheckFailure on malformed
/// input (ask/tree size mismatch, unknown task types, zero quantities).
RitResult run_rit(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng);

/// Scratch-reusing form: identical draws and result, but all per-round
/// buffers live in `ws`. The convenience overload above delegates to this
/// with a fresh workspace.
RitResult run_rit(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng, RitWorkspace& ws);

/// Runs only the auction phase (both result payment vectors are set to the
/// auction payments). Used by baselines and by the Sec. 4 experiments that
/// need a tree-free truthful auction; run_rit composes this with
/// tree_payments().
RitResult run_auction_phase(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng);

/// Scratch-reusing form of run_auction_phase (see RitWorkspace).
RitResult run_auction_phase(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng,
                            RitWorkspace& ws);

/// Result-reusing forms: identical draws and values, but the result's
/// vectors are refilled in place, so a sweep that keeps one RitResult per
/// worker performs no steady-state allocations in either phase. The
/// RitResult-returning overloads delegate here.
void run_rit_into(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng, RitWorkspace& ws, RitResult& out);

/// See run_rit_into.
void run_auction_phase_into(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng,
                            RitWorkspace& ws, RitResult& out);

}  // namespace rit::core
