// Allocative efficiency: what the randomized auction costs in welfare.
//
// A deterministic cheapest-first auction assigns every task to the lowest-
// cost supply; CRA deliberately randomizes winners (collusion resistance),
// so some tasks land on more expensive users. With truthful asks the ask
// values are the social costs, so
//
//   efficiency = optimal_cost / allocation_cost   (in (0, 1])
//
// measures how much sensing cost the randomization wastes. Reported by the
// related-mechanisms bench: the k-th price baseline sits at 1.0 by
// construction; RIT's gap is the allocative price of robustness.
#pragma once

#include <span>
#include <vector>

#include "core/types.h"

namespace rit::core {

/// Total social cost of an allocation: sum over users of x_j * a_j (with
/// truthful asks, a_j == c_j). Requires x_j <= k_j.
double allocation_cost(std::span<const Ask> asks,
                       std::span<const std::uint32_t> allocation);

/// Cost of the cheapest feasible assignment: per type, fill m_i tasks from
/// the lowest ask values (units of one user counted up to its quantity).
/// Returns the cost, or a negative value if the job is infeasible.
double optimal_cost(const Job& job, std::span<const Ask> asks);

/// optimal / actual, or 0 when nothing was allocated. 1.0 means the
/// allocation is cost-optimal.
double cost_efficiency(const Job& job, std::span<const Ask> asks,
                       std::span<const std::uint32_t> allocation);

}  // namespace rit::core
