// Extract (Algorithm 2): flattens per-user asks (t_j, k_j, a_j) into the
// unit-ask vector alpha for one task type, remembering the owner map
// lambda(w) = j.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace rit::core {

struct ExtractedAsks {
  /// alpha: one entry per unit ask, value a_j repeated k times.
  std::vector<double> values;
  /// lambda: owner[w] is the index of the user that unit ask w came from.
  std::vector<std::uint32_t> owner;

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
};

/// Plain Algorithm 2: expands ask j into asks[j].quantity unit asks when
/// asks[j].type == type.
ExtractedAsks extract(TaskType type, std::span<const Ask> asks);

/// The form RIT's multi-round loop needs: expands ask j into
/// remaining_quantity[j] unit asks (the paper's k'_j, i.e. capability not
/// yet consumed by earlier CRA rounds). remaining_quantity must be
/// elementwise <= the asked quantity.
ExtractedAsks extract_remaining(TaskType type, std::span<const Ask> asks,
                                std::span<const std::uint32_t> remaining_quantity);

/// Scratch-reusing form of extract_remaining: clears and refills `out`
/// without releasing its buffers, so the per-round expansion in RIT's
/// auction loop stops allocating once `out` has grown to the market size
/// (keep one per thread — core::RitWorkspace does).
void extract_remaining_into(TaskType type, std::span<const Ask> asks,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out);

}  // namespace rit::core
