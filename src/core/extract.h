// Extract (Algorithm 2): flattens per-user asks (t_j, k_j, a_j) into the
// unit-ask vector alpha for one task type, remembering the owner map
// lambda(w) = j.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace rit::core {

struct ExtractedAsks {
  /// alpha: one entry per unit ask, value a_j repeated k times.
  std::vector<double> values;
  /// lambda: owner[w] is the index of the user that unit ask w came from.
  std::vector<std::uint32_t> owner;

  std::size_t size() const { return values.size(); }
  bool empty() const { return values.empty(); }
};

/// Plain Algorithm 2: expands ask j into asks[j].quantity unit asks when
/// asks[j].type == type.
ExtractedAsks extract(TaskType type, std::span<const Ask> asks);

/// The form RIT's multi-round loop needs: expands ask j into
/// remaining_quantity[j] unit asks (the paper's k'_j, i.e. capability not
/// yet consumed by earlier CRA rounds). remaining_quantity must be
/// elementwise <= the asked quantity.
ExtractedAsks extract_remaining(TaskType type, std::span<const Ask> asks,
                                std::span<const std::uint32_t> remaining_quantity);

/// Scratch-reusing form of extract_remaining: clears and refills `out`
/// without releasing its buffers, so the per-round expansion in RIT's
/// auction loop stops allocating once `out` has grown to the market size
/// (keep one per thread — core::RitWorkspace does).
void extract_remaining_into(TaskType type, std::span<const Ask> asks,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out);

/// Per-type CSR over one ask vector, built once per auction so the
/// multi-round loop can expand type tau_i by scanning only tau_i's askers
/// instead of all N asks every round (the seed path's O(N * rounds * types)
/// term, which dominates at millions of users). Within a type the users
/// stay in ascending index order, so expansions are byte-identical to the
/// full-scan path. build() reuses capacity across auctions.
struct AskTypeIndex {
  std::vector<std::uint32_t> offsets;   ///< per type: [offsets[t], offsets[t+1])
  std::vector<std::uint32_t> user;      ///< flat ask indices, ascending per type
  std::vector<double> value;            ///< value[i] = asks[user[i]].value
  std::vector<std::uint32_t> quantity;  ///< quantity[i] = asks[user[i]].quantity

  std::uint32_t num_types() const {
    return offsets.empty() ? 0 : static_cast<std::uint32_t>(offsets.size() - 1);
  }
  /// Rebuilds for `asks`; every ask's type must be < num_types (run
  /// validate_asks first).
  void build(std::uint32_t num_types, std::span<const Ask> asks);
};

/// extract_remaining_into over the index: same output as the span form for
/// the indexed ask vector, touching only `type`'s group.
void extract_remaining_into(TaskType type, const AskTypeIndex& index,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out);

}  // namespace rit::core
