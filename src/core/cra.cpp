#include "core/cra.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

// rit-lint: allow-file(testkit-only-injection)
#include "common/bug_inject.h"
#include "common/check.h"
#include "obs/obs.h"

namespace rit::core {

std::uint64_t consensus_round_down(std::uint64_t count, double y,
                                   double base) {
  RIT_CHECK(y >= 0.0 && y < 1.0);
  RIT_CHECK_MSG(base > 1.0, "consensus grid base must exceed 1, got " << base);
  if (count == 0) return 0;
  // Largest z with base^(z+y) <= count, i.e. z = floor(log_base(count) - y).
  const double lg =
      std::log(static_cast<double>(count)) / std::log(base);
  double z = std::floor(lg - y);
  double value = std::pow(base, z + y);
  // Guard floating-point edges on both sides: pow/log rounding can land
  // value one step high or low when lg - y is (nearly) integral.
  while (value > static_cast<double>(count) && z > -2000.0) {
    z -= 1.0;
    value = std::pow(base, z + y);
  }
  while (std::pow(base, z + 1.0 + y) <= static_cast<double>(count)) {
    z += 1.0;
    value = std::pow(base, z + y);
  }
  return static_cast<std::uint64_t>(std::floor(value));
}

namespace {

// Ascending-value index order with ties first in index order, then shuffled
// uniformly: equal asks must be treated equally ("anonymity"), otherwise
// "the smallest n asks" would systematically favour whichever user Extract
// happened to expand first. The index tie-break makes plain sort produce
// exactly what stable_sort over values would — without stable_sort's
// per-call temporary buffer, keeping the round allocation-free.
void sorted_order_with_shuffled_ties(std::span<const double> asks,
                                     std::vector<std::uint32_t>& order,
                                     rng::Rng& rng) {
  order.resize(asks.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (asks[a] != asks[b]) return asks[a] < asks[b];
#if RIT_BUG_ENABLED(RIT_BUG_CRA_TIEBREAK)
              return a > b;  // planted: ties enter the shuffle reversed
#else
              return a < b;
#endif
            });
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i + 1;
    while (j < order.size() && asks[order[j]] == asks[order[i]]) ++j;
    if (j - i > 1) rng.shuffle(std::span<std::uint32_t>(&order[i], j - i));
    i = j;
  }
}

}  // namespace

CraOutcome run_cra(std::span<const double> asks, const CraParams& params,
                   rng::Rng& rng) {
  CraWorkspace ws;
  CraOutcome out;
  run_cra(asks, params, rng, ws, out);
  return out;
}

void run_cra(std::span<const double> asks, const CraParams& params,
             rng::Rng& rng, CraWorkspace& ws, CraOutcome& out) {
  RIT_COUNTER_INC("cra.rounds");
  // Reset the outcome in place: `won` keeps its capacity across rounds.
  out.won.assign(asks.size(), false);
  out.clearing_price = 0.0;
  out.num_winners = 0;
  out.sample_min = 0.0;
  out.raw_count = 0;
  out.consensus_count = 0;
  out.used_budget_price = false;
  if (asks.empty() || params.q == 0) return;
  const std::uint64_t budget =
      static_cast<std::uint64_t>(params.q) + params.m_i;
  RIT_CHECK(budget > 0);

  if (params.price_mode == PriceMode::kOrderStatistic) {
    // Ablation arm: a plain (q+m_i+1)-st lowest price round. Needs at least
    // budget+1 asks to define the price; ties shuffled like the main path.
    if (asks.size() < budget + 1) return;
    sorted_order_with_shuffled_ties(asks, ws.order, rng);
    const double price = asks[ws.order[budget]];
    out.sample_min = price;
    out.raw_count = budget;
    out.consensus_count = budget;
    rng.sample_without_replacement_into(budget, params.q, ws.sample_pool,
                                        ws.sample_out);
    for (std::size_t i : ws.sample_out) out.won[ws.order[i]] = true;
    out.num_winners = params.q;
    out.clearing_price = price;
    RIT_COUNTER_ADD("cra.winners", out.num_winners);
    return;
  }

  // Phase 1 of the CRA round: threshold sampling plus consensus rounding of
  // the below-threshold count (steps 1-2 of the paper's Algorithm 2).
  std::uint64_t n_s = 0;
  {
    RIT_TRACE_SPAN("cra.phase1");
    // Step 1: Bernoulli(1/(q+m_i)) sample; s = min sampled value.
    const double sample_p = 1.0 / static_cast<double>(budget);
    double s = std::numeric_limits<double>::infinity();
    bool sampled_any = false;
    for (double v : asks) {
      if (rng.bernoulli(sample_p)) {
        sampled_any = true;
        s = std::min(s, v);
      }
    }
    if (!sampled_any) {
      if (params.empty_sample == EmptySamplePolicy::kNoWinners) return;
      // kAllAsks: act as if the threshold sits at the top of the book —
      // every ask is at or below it, and it is still a finite, IR-safe
      // price.
      s = *std::max_element(asks.begin(), asks.end());
    }
    out.sample_min = s;

    // Step 2: consensus-round the count of asks <= s.
    const double y = rng.uniform01();
    std::uint64_t raw = 0;
    for (double v : asks) {
      if (v <= s) ++raw;
    }
    out.raw_count = raw;
    n_s = consensus_round_down(raw, y, params.consensus_grid_base);
    out.consensus_count = n_s;
  }
  if (n_s == 0) return;
  const double s = out.sample_min;

  // Phase 2 of the CRA round: winner selection and pricing (steps 3-5).
  RIT_TRACE_SPAN("cra.phase2");
  sorted_order_with_shuffled_ties(asks, ws.order, rng);

  // Step 3: potential winners, in ascending-value order.
  std::vector<std::uint32_t>& chosen = ws.chosen;
  chosen.clear();
  if (n_s <= budget) {
    chosen.assign(ws.order.begin(),
                  ws.order.begin() + static_cast<std::ptrdiff_t>(n_s));
  } else {
    const double keep_p =
        static_cast<double>(budget) / (2.0 * static_cast<double>(n_s));
    chosen.reserve(n_s);
    for (std::uint64_t i = 0; i < n_s; ++i) {
      if (rng.bernoulli(keep_p)) chosen.push_back(ws.order[i]);
    }
  }

  // Step 4: if over the potential-winner budget, keep the cheapest q+m_i and
  // reprice at the first excluded ask (a (q+m_i+1)-st price auction).
  double price = s;
  if (chosen.size() > budget) {
    price = asks[chosen[budget]];  // (q+m_i+1)-st smallest chosen ask value
    chosen.resize(budget);
    out.used_budget_price = true;
  }

  // Step 5: if more than q survive, q winners uniformly at random.
  if (chosen.size() > params.q) {
    rng.sample_without_replacement_into(chosen.size(), params.q,
                                        ws.sample_pool, ws.sample_out);
    ws.winners.clear();
    ws.winners.reserve(params.q);
    for (std::size_t i : ws.sample_out) ws.winners.push_back(chosen[i]);
    std::swap(chosen, ws.winners);
  }

  for (std::uint32_t w : chosen) {
    RIT_DCHECK(asks[w] <= price);  // Lemma 6.1: winners never outbid the price
    out.won[w] = true;
  }
  out.num_winners = static_cast<std::uint32_t>(chosen.size());
  out.clearing_price = chosen.empty() ? 0.0 : price;
  RIT_COUNTER_ADD("cra.winners", out.num_winners);
}

}  // namespace rit::core
