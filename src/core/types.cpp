#include "core/types.h"

#include <cmath>
#include <numeric>

namespace rit::core {

Job::Job(std::vector<std::uint32_t> demand) : demand_(std::move(demand)) {
  RIT_CHECK_MSG(!demand_.empty(), "a job must define at least one task type");
  for (std::uint32_t d : demand_) {
    total_ += d;
    if (d > 0) ++demanded_types_;
  }
  RIT_CHECK_MSG(total_ > 0, "a job must demand at least one task");
}

Job Job::uniform(std::uint32_t num_types, std::uint32_t per_type) {
  return Job(std::vector<std::uint32_t>(num_types, per_type));
}

void validate_asks(const Job& job, std::span<const Ask> asks) {
  for (std::size_t j = 0; j < asks.size(); ++j) {
    const Ask& a = asks[j];
    RIT_CHECK_MSG(a.type.value < job.num_types(),
                  "ask " << j << " references unknown task type "
                         << a.type.value);
    RIT_CHECK_MSG(a.quantity > 0, "ask " << j << " has zero quantity");
    RIT_CHECK_MSG(a.quantity <= kMaxAskQuantity,
                  "ask " << j << " claims " << a.quantity
                         << " tasks, above the sanity cap "
                         << kMaxAskQuantity);
    RIT_CHECK_MSG(std::isfinite(a.value) && a.value > 0.0,
                  "ask " << j << " has invalid value " << a.value);
  }
}

std::uint32_t observed_k_max(std::span<const Ask> asks) {
  std::uint32_t k = 0;
  for (const Ask& a : asks) k = std::max(k, a.quantity);
  return k;
}

}  // namespace rit::core
