// Payment auditing: explain and verify the payment determination phase.
//
// A crowdsensing platform owes its users an answer to "why was I paid
// this?". explain_payment() decomposes one participant's final payment into
// the auction component plus one line per contributing descendant (who,
// their depth, their task type, the discount applied, the share received).
// audit_payments() re-derives every payment from first principles (the
// O(N * depth) definition) and checks the paper's invariants, returning a
// machine-checkable report; tests run it after every mechanism test
// scenario, and it doubles as a differential oracle for the fast
// tree_payments() implementation.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/ids.h"
#include "core/rit.h"
#include "tree/incentive_tree.h"

namespace rit::core {

/// One contributing descendant in a payment explanation.
struct ContributionLine {
  std::uint32_t participant{0};  // the descendant
  TaskType type;
  std::uint32_t depth{0};        // r_i, absolute depth of the contributor
  double auction_payment{0.0};   // p_i^A
  double share{0.0};             // discount^depth * p_i^A
};

struct PaymentExplanation {
  std::uint32_t participant{0};
  double auction_payment{0.0};
  /// Different-type descendants with non-zero auction payment, ordered by
  /// share (largest first).
  std::vector<ContributionLine> contributions;
  /// Same-type descendants whose payment was excluded by the t_i != t_j
  /// rule (count only; they never contribute).
  std::uint32_t same_type_excluded{0};
  double total() const;

  /// Human-readable multi-line rendering.
  std::string render() const;
};

/// Explains participant `j`'s payment for the given mechanism inputs.
PaymentExplanation explain_payment(const tree::IncentiveTree& tree,
                                   std::span<const TaskType> types,
                                   std::span<const double> auction_payments,
                                   double discount_base, std::uint32_t j);

struct AuditReport {
  bool ok{true};
  /// Human-readable descriptions of every violated invariant.
  std::vector<std::string> violations;
  double total_payment{0.0};
  double total_auction_payment{0.0};
  double solicitation_premium{0.0};
};

/// Re-derives every payment from the definition and checks:
///  * payment[j] matches the re-derivation within tolerance;
///  * payment[j] >= auction_payment[j] (tree rewards are non-negative);
///  * the Sec. 7-C budget bound premium <= total auction payment (checked
///    only for discount bases <= 1/2, where it is actually a theorem);
///  * on failed runs, everything is zero.
AuditReport audit_payments(const tree::IncentiveTree& tree,
                           std::span<const Ask> asks, const RitResult& result,
                           double discount_base, double tolerance = 1e-6);

}  // namespace rit::core
