#include "core/efficiency.h"

#include <algorithm>

#include "common/check.h"
#include "core/extract.h"

namespace rit::core {

double allocation_cost(std::span<const Ask> asks,
                       std::span<const std::uint32_t> allocation) {
  RIT_CHECK(asks.size() == allocation.size());
  double cost = 0.0;
  for (std::size_t j = 0; j < asks.size(); ++j) {
    RIT_CHECK_MSG(allocation[j] <= asks[j].quantity,
                  "allocation exceeds claimed quantity for user " << j);
    cost += static_cast<double>(allocation[j]) * asks[j].value;
  }
  return cost;
}

double optimal_cost(const Job& job, std::span<const Ask> asks) {
  double total = 0.0;
  for (std::uint32_t ti = 0; ti < job.num_types(); ++ti) {
    const TaskType type{ti};
    const std::uint32_t m_i = job.demand(type);
    if (m_i == 0) continue;
    ExtractedAsks alpha = extract(type, asks);
    if (alpha.size() < m_i) return -1.0;  // infeasible
    std::nth_element(alpha.values.begin(), alpha.values.begin() + (m_i - 1),
                     alpha.values.end());
    for (std::uint32_t u = 0; u < m_i; ++u) total += alpha.values[u];
  }
  return total;
}

double cost_efficiency(const Job& job, std::span<const Ask> asks,
                       std::span<const std::uint32_t> allocation) {
  const double actual = allocation_cost(asks, allocation);
  if (actual <= 0.0) return 0.0;
  const double optimal = optimal_cost(job, asks);
  if (optimal < 0.0) return 0.0;
  return optimal / actual;
}

}  // namespace rit::core
