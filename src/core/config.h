// Mechanism configuration knobs.
//
// Defaults reproduce the paper (H = 0.8, discount base 1/2). The remaining
// knobs parameterize the ambiguities catalogued in DESIGN.md §1 so the
// ablation benches can quantify them.
#pragma once

#include <cstdint>
#include <optional>

namespace rit::core {

/// What CRA does when its Bernoulli(1/(q+m_i)) sample S comes back empty
/// (Alg. 1 line 2 leaves s = min S undefined in that case).
enum class EmptySamplePolicy {
  /// Treat the threshold as the largest ask value: the consensus count is
  /// taken over all asks and the price stays finite and IR-safe. This keeps
  /// the round productive and is the default.
  kAllAsks,
  /// Abort the round with no winners (a strictly conservative reading).
  kNoWinners,
};

/// How many CRA rounds the auction phase may spend per task type.
enum class RoundBudgetPolicy {
  /// Exactly Alg. 3 line 7: at most `max` rounds, preserving the
  /// (K_max, H) guarantee. At the paper's own evaluation scale this budget
  /// is 1-2 rounds per type and the allocation frequently cannot complete
  /// (the run then fails closed) — see DESIGN.md ambiguity #3.
  kTheoretical,
  /// Keep running rounds until the demand is filled, supply is exhausted,
  /// or `stall_round_limit` consecutive rounds make no progress. This is
  /// the only reading under which the paper's Sec. 7 figures are
  /// reproducible; the achieved truthfulness bound (per-round bound ^
  /// rounds actually used) is reported in TypeAuctionInfo/RitResult so the
  /// weakening is visible rather than silent.
  kRunToCompletion,
};

/// How CRA selects winners and sets the per-round price — the ablation knob
/// behind the paper's central design argument (Sec. 4-A / Lemma 6.2).
enum class PriceMode {
  /// The paper's Algorithm 1: a sampled threshold plus consensus-rounded
  /// winner count. Coalitions of K_max asks only move the outcome with
  /// probability bounded by Lemma 6.2.
  kConsensus,
  /// The strawman: a deterministic (q+m_i+1)-st lowest price auction per
  /// round (each round is exactly the k-th price auction of Sec. 4-A,
  /// truthful for independent bidders but price-manipulable by coalitions
  /// and thus by sybil identities). bench_ablation_consensus and the
  /// collusion tests quantify the difference.
  kOrderStatistic,
};

struct RitConfig {
  /// The paper's H: RIT is truthful and sybil-proof with probability >= H.
  double h = 0.8;

  PriceMode price_mode = PriceMode::kConsensus;

  RoundBudgetPolicy round_budget_policy = RoundBudgetPolicy::kTheoretical;

  /// kRunToCompletion only: give up on a type after this many consecutive
  /// zero-winner rounds (e.g. a lone remaining ask can never clear the
  /// consensus hurdle; see cra.h).
  std::uint32_t stall_round_limit = 100;

  /// Base of the per-depth discount in the payment determination phase
  /// (Alg. 3 line 24 uses 1/2). Must be in (0, 1).
  double discount_base = 0.5;

  /// Base c of the consensus grid {c^(z+y)} used by CRA's rounding step —
  /// and therefore the base of the log in the Lemma 6.2 failure term
  /// (a coalition moving the count by k flips the consensus on a y-set of
  /// measure log_c(z/(z-k))). 2.0 is the paper's Goldberg–Hartline setting
  /// (DESIGN.md ambiguity #1); larger bases buy collusion protection at
  /// the cost of coarser winner counts (bench_ablation_gridbase).
  double consensus_log_base = 2.0;

  EmptySamplePolicy empty_sample = EmptySamplePolicy::kAllAsks;

  /// The literal `max` formula of Alg. 3 line 7 yields 0 rounds whenever
  /// m_i is small relative to K_max (e.g. the paper's own Fig. 9 setup);
  /// clamping to one round keeps the mechanism productive at the cost of a
  /// weaker probability bound (flagged in RitResult::probability_degraded).
  /// See DESIGN.md ambiguity #3.
  bool clamp_min_one_round = true;

  /// Overrides the K_max used in the round-budget formula. By default the
  /// platform uses max_j k_j over submitted asks.
  std::optional<std::uint32_t> k_max_override;

  /// Record a per-round trace (price, winners, consensus diagnostics) in
  /// TypeAuctionInfo::rounds. Off by default: traces cost memory
  /// proportional to rounds and exist for debugging/teaching, not for the
  /// mechanism itself.
  bool record_round_trace = false;

  /// Alg. 3 lines 26-28: if the job cannot be fully allocated within the
  /// round budget, zero every allocation and payment. Disable to keep the
  /// partial allocation (useful for diagnostics; violates the paper).
  bool zero_on_failure = true;

  /// Worker threads for the deterministic intra-trial parallel passes (the
  /// payment determination phase today; tree/graph construction take the
  /// matching sim::Scenario::intra_threads knob). Every parallel pass uses
  /// a static blocked partition with disjoint writes, so results are
  /// bit-identical at any setting — this knob trades wall-clock for cores,
  /// never output. 1 = serial (default); 0 = one per hardware thread.
  /// Deliberately excluded from result/checkpoint identity: it cannot
  /// change what a run computes.
  unsigned intra_threads = 1;
};

}  // namespace rit::core
