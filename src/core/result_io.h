// Experiment-record serialization.
//
// A mechanism whose payments move real money needs an audit trail: the
// exact inputs (job, sealed asks, incentive tree) and outputs (allocation,
// payments) of a run, in a format that round-trips bit-exactly (doubles are
// stored as C hex-float literals) so audit_payments() can re-derive and
// verify the payments years later. The format is line-oriented text —
// greppable, diffable, versioned with a header.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/rit.h"
#include "core/types.h"
#include "tree/incentive_tree.h"

namespace rit::core {

/// Everything needed to re-derive and verify one mechanism run.
struct ExperimentRecord {
  Job job{std::vector<std::uint32_t>{1}};
  std::vector<Ask> asks;
  /// The incentive tree as its parent vector (participant j at node j+1).
  std::vector<std::uint32_t> tree_parents;
  /// The discount base the payment phase used.
  double discount_base{0.5};
  RitResult result;

  tree::IncentiveTree tree() const {
    return tree::IncentiveTree(tree_parents);
  }
};

/// Writes the record. Deterministic output: same record, same bytes.
void write_record(const ExperimentRecord& record, std::ostream& out);
void write_record_file(const ExperimentRecord& record,
                       const std::string& path);

/// Parses a record; throws CheckFailure on version/format errors or
/// internally inconsistent sizes. Round-trips doubles bit-exactly.
ExperimentRecord read_record(std::istream& in);
ExperimentRecord read_record_file(const std::string& path);

}  // namespace rit::core
