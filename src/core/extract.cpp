#include "core/extract.h"

namespace rit::core {

namespace {
void extract_impl(TaskType type, std::span<const Ask> asks,
                  std::span<const std::uint32_t>* remaining,
                  ExtractedAsks& out) {
  out.values.clear();
  out.owner.clear();
  // Reserve pass keeps the expansion allocation-free in the hot loop.
  std::size_t total = 0;
  for (std::size_t j = 0; j < asks.size(); ++j) {
    if (asks[j].type != type) continue;
    total += remaining ? (*remaining)[j] : asks[j].quantity;
  }
  out.values.reserve(total);
  out.owner.reserve(total);
  for (std::size_t j = 0; j < asks.size(); ++j) {
    if (asks[j].type != type) continue;
    const std::uint32_t k = remaining ? (*remaining)[j] : asks[j].quantity;
    if (remaining) {
      RIT_CHECK_MSG(k <= asks[j].quantity,
                    "remaining quantity " << k << " exceeds asked quantity "
                                          << asks[j].quantity << " for user "
                                          << j);
    }
    for (std::uint32_t f = 0; f < k; ++f) {
      out.values.push_back(asks[j].value);
      out.owner.push_back(static_cast<std::uint32_t>(j));
    }
  }
}
}  // namespace

ExtractedAsks extract(TaskType type, std::span<const Ask> asks) {
  ExtractedAsks out;
  extract_impl(type, asks, nullptr, out);
  return out;
}

ExtractedAsks extract_remaining(
    TaskType type, std::span<const Ask> asks,
    std::span<const std::uint32_t> remaining_quantity) {
  ExtractedAsks out;
  extract_remaining_into(type, asks, remaining_quantity, out);
  return out;
}

void extract_remaining_into(TaskType type, std::span<const Ask> asks,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out) {
  RIT_CHECK(remaining_quantity.size() == asks.size());
  extract_impl(type, asks, &remaining_quantity, out);
}

void AskTypeIndex::build(std::uint32_t types, std::span<const Ask> asks) {
  offsets.assign(types + 1, 0);
  user.resize(asks.size());
  value.resize(asks.size());
  quantity.resize(asks.size());
  for (const Ask& a : asks) {
    RIT_CHECK_MSG(a.type.value < types, "ask type " << a.type.value
                                                    << " outside job's "
                                                    << types << " types");
    offsets[a.type.value + 1] += 1;
  }
  for (std::uint32_t t = 0; t < types; ++t) offsets[t + 1] += offsets[t];
  // Second pass places each ask at its group cursor; iterating j ascending
  // keeps every group sorted by user index, which is what makes indexed
  // expansion order-identical to the full scan.
  for (std::size_t j = 0; j < asks.size(); ++j) {
    const std::uint32_t slot = offsets[asks[j].type.value]++;
    user[slot] = static_cast<std::uint32_t>(j);
    value[slot] = asks[j].value;
    quantity[slot] = asks[j].quantity;
  }
  // The cursor walk advanced offsets[t] to offsets[t+1]; shift back.
  for (std::uint32_t t = types; t > 0; --t) offsets[t] = offsets[t - 1];
  offsets[0] = 0;
}

void extract_remaining_into(TaskType type, const AskTypeIndex& index,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out) {
  RIT_CHECK(type.value < index.num_types());
  out.values.clear();
  out.owner.clear();
  const std::uint32_t begin = index.offsets[type.value];
  const std::uint32_t end = index.offsets[type.value + 1];
  std::size_t total = 0;
  for (std::uint32_t i = begin; i < end; ++i) {
    total += remaining_quantity[index.user[i]];
  }
  out.values.reserve(total);
  out.owner.reserve(total);
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::uint32_t j = index.user[i];
    const std::uint32_t k = remaining_quantity[j];
    RIT_CHECK_MSG(k <= index.quantity[i],
                  "remaining quantity " << k << " exceeds asked quantity "
                                        << index.quantity[i] << " for user "
                                        << j);
    for (std::uint32_t f = 0; f < k; ++f) {
      out.values.push_back(index.value[i]);
      out.owner.push_back(j);
    }
  }
}

}  // namespace rit::core
