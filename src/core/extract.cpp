#include "core/extract.h"

namespace rit::core {

namespace {
void extract_impl(TaskType type, std::span<const Ask> asks,
                  std::span<const std::uint32_t>* remaining,
                  ExtractedAsks& out) {
  out.values.clear();
  out.owner.clear();
  // Reserve pass keeps the expansion allocation-free in the hot loop.
  std::size_t total = 0;
  for (std::size_t j = 0; j < asks.size(); ++j) {
    if (asks[j].type != type) continue;
    total += remaining ? (*remaining)[j] : asks[j].quantity;
  }
  out.values.reserve(total);
  out.owner.reserve(total);
  for (std::size_t j = 0; j < asks.size(); ++j) {
    if (asks[j].type != type) continue;
    const std::uint32_t k = remaining ? (*remaining)[j] : asks[j].quantity;
    if (remaining) {
      RIT_CHECK_MSG(k <= asks[j].quantity,
                    "remaining quantity " << k << " exceeds asked quantity "
                                          << asks[j].quantity << " for user "
                                          << j);
    }
    for (std::uint32_t f = 0; f < k; ++f) {
      out.values.push_back(asks[j].value);
      out.owner.push_back(static_cast<std::uint32_t>(j));
    }
  }
}
}  // namespace

ExtractedAsks extract(TaskType type, std::span<const Ask> asks) {
  ExtractedAsks out;
  extract_impl(type, asks, nullptr, out);
  return out;
}

ExtractedAsks extract_remaining(
    TaskType type, std::span<const Ask> asks,
    std::span<const std::uint32_t> remaining_quantity) {
  ExtractedAsks out;
  extract_remaining_into(type, asks, remaining_quantity, out);
  return out;
}

void extract_remaining_into(TaskType type, std::span<const Ask> asks,
                            std::span<const std::uint32_t> remaining_quantity,
                            ExtractedAsks& out) {
  RIT_CHECK(remaining_quantity.size() == asks.size());
  extract_impl(type, asks, &remaining_quantity, out);
}

}  // namespace rit::core
