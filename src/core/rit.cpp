#include "core/rit.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/cra.h"
#include "core/extract.h"
#include "core/payment.h"
#include "obs/obs.h"

namespace rit::core {

RoundBudget compute_round_budget(std::uint32_t m_i, std::uint32_t k_max,
                                 double eta, const RitConfig& config) {
  RIT_CHECK(eta > 0.0 && eta < 1.0);
  RoundBudget out;
  if (m_i == 0) {
    out.max_rounds = 0;  // nothing to allocate, nothing to protect
    out.per_round_bound = 1.0;
    return out;
  }
  // Lemma 6.2 evaluated at the worst case q -> 0 (Remark 6.1): the bound is
  // monotone in q, so budgeting against q = 0 covers every round.
  const double mi = static_cast<double>(m_i);
  const double k = static_cast<double>(std::max<std::uint32_t>(k_max, 1));
  const double sample_term = std::pow(1.0 - 1.0 / mi, k);
  const double chernoff_term = std::exp(-mi / 8.0);
  double consensus_term;
  if (2.0 * k >= mi) {
    consensus_term = -std::numeric_limits<double>::infinity();
  } else {
    consensus_term =
        std::log(1.0 - 2.0 * k / mi) / std::log(config.consensus_log_base);
  }
  out.per_round_bound = sample_term + consensus_term - chernoff_term;

  if (out.per_round_bound <= 0.0 || out.per_round_bound >= 1.0) {
    // The Lemma 6.2 bound is vacuous for these parameters; the paper's
    // formula would allow zero rounds (and allocate nothing).
    out.max_rounds = config.clamp_min_one_round ? 1 : 0;
    out.degraded = true;
    return out;
  }
  // Largest `max` with per_round_bound^max >= eta.
  const double raw = std::log(eta) / std::log(out.per_round_bound);
  out.max_rounds = static_cast<std::uint32_t>(
      std::min(raw, 1e9));  // floor via truncation; raw >= 0 here
  if (out.max_rounds == 0 && config.clamp_min_one_round) {
    out.max_rounds = 1;
    out.degraded = true;
  }
  return out;
}

namespace {
void zero_result(RitResult& r) {
  std::fill(r.allocation.begin(), r.allocation.end(), 0u);
  std::fill(r.auction_payment.begin(), r.auction_payment.end(), 0.0);
  std::fill(r.payment.begin(), r.payment.end(), 0.0);
}
}  // namespace

double RitResult::total_payment() const {
  double t = 0.0;
  for (double p : payment) t += p;
  return t;
}

double RitResult::total_auction_payment() const {
  double t = 0.0;
  for (double p : auction_payment) t += p;
  return t;
}

RitResult run_auction_phase(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng) {
  RitWorkspace ws;
  return run_auction_phase(job, asks, config, rng, ws);
}

RitResult run_auction_phase(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng,
                            RitWorkspace& ws) {
  RitResult res;
  run_auction_phase_into(job, asks, config, rng, ws, res);
  return res;
}

void run_auction_phase_into(const Job& job, std::span<const Ask> asks,
                            const RitConfig& config, rng::Rng& rng,
                            RitWorkspace& ws, RitResult& res) {
  RIT_TRACE_SPAN("rit.auction_phase");
  RIT_COUNTER_INC("rit.auctions_run");
  validate_asks(job, asks);
  RIT_CHECK_MSG(config.h > 0.0 && config.h < 1.0,
                "H must lie in (0,1), got " << config.h);
  RIT_CHECK_MSG(config.consensus_log_base > 1.0,
                "consensus grid/log base must exceed 1, got "
                    << config.consensus_log_base);
  RIT_CHECK_MSG(config.discount_base > 0.0 && config.discount_base < 1.0,
                "discount base must lie in (0,1), got "
                    << config.discount_base);

  const auto n = static_cast<std::uint32_t>(asks.size());
  res.success = false;
  res.type_info.clear();
  res.probability_degraded = false;
  res.achieved_probability = 1.0;
  res.allocation.assign(n, 0);
  res.auction_payment.assign(n, 0.0);
  res.payment.assign(n, 0.0);
  res.k_max = config.k_max_override.value_or(observed_k_max(asks));
  const std::uint32_t m = std::max<std::uint32_t>(job.num_demanded_types(), 1);
  res.eta = std::pow(config.h, 1.0 / static_cast<double>(m));

  // k'_j: capability not yet consumed by earlier rounds.
  std::vector<std::uint32_t>& remaining = ws.remaining;
  remaining.resize(n);
  for (std::uint32_t j = 0; j < n; ++j) remaining[j] = asks[j].quantity;

  // One per-type CSR build up front; each round then expands only its own
  // type's askers instead of rescanning all N asks.
  ws.type_index.build(job.num_types(), asks);

  bool all_allocated = true;
  for (std::uint32_t ti = 0; ti < job.num_types(); ++ti) {
    const TaskType type{ti};
    const std::uint32_t m_i = job.demand(type);
    TypeAuctionInfo info;
    info.type = type;
    info.demanded = m_i;
    info.budget = compute_round_budget(m_i, res.k_max, res.eta, config);
    res.probability_degraded |= info.budget.degraded;

    const bool to_completion =
        config.round_budget_policy == RoundBudgetPolicy::kRunToCompletion;
    std::uint32_t q = m_i;
    std::uint32_t stalled = 0;
    while (q > 0) {
      if (!to_completion && info.rounds_used >= info.budget.max_rounds) break;
      if (to_completion && stalled >= config.stall_round_limit) break;
      ExtractedAsks& alpha = ws.alpha;
      {
        RIT_TRACE_SPAN("rit.extract");
        extract_remaining_into(type, ws.type_index, remaining, alpha);
      }
      if (alpha.empty()) break;  // nobody left who can serve this type
      CraParams params;
      params.q = q;
      params.m_i = m_i;
      params.empty_sample = config.empty_sample;
      params.price_mode = config.price_mode;
      params.consensus_grid_base = config.consensus_log_base;
      run_cra(alpha.values, params, rng, ws.cra, ws.round);
      const CraOutcome& round = ws.round;
      for (std::size_t w = 0; w < alpha.size(); ++w) {
        if (!round.won[w]) continue;
        const std::uint32_t owner = alpha.owner[w];
        res.allocation[owner] += 1;
        res.auction_payment[owner] += round.clearing_price;
        RIT_DCHECK(remaining[owner] > 0);
        remaining[owner] -= 1;
        RIT_DCHECK(q > 0);
        q -= 1;
      }
      if (config.record_round_trace) {
        info.rounds.push_back(RoundTrace{
            info.rounds_used, round.clearing_price, round.num_winners,
            q + round.num_winners, round.raw_count, round.consensus_count,
            round.used_budget_price});
      }
      stalled = round.num_winners == 0 ? stalled + 1 : 0;
      ++info.rounds_used;
    }
    info.allocated = m_i - q;
    if (info.budget.per_round_bound > 0.0 && info.budget.per_round_bound < 1.0) {
      info.achieved_bound = std::pow(info.budget.per_round_bound,
                                     static_cast<double>(info.rounds_used));
    } else {
      info.achieved_bound = info.rounds_used == 0 ? 1.0 : 0.0;
    }
    res.achieved_probability *= info.achieved_bound;
    if (to_completion && info.rounds_used > info.budget.max_rounds) {
      res.probability_degraded = true;
    }
    if (config.price_mode == PriceMode::kOrderStatistic) {
      // Lemma 6.2 does not apply to the deterministic ablation arm.
      res.probability_degraded = true;
    }
    if (q > 0) all_allocated = false;
    res.type_info.push_back(info);
  }

  res.success = all_allocated;
  if (!res.success && config.zero_on_failure) {
    zero_result(res);
  } else {
    res.payment.assign(res.auction_payment.begin(),
                       res.auction_payment.end());
  }
}

RitResult run_rit(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng) {
  RitWorkspace ws;
  return run_rit(job, asks, tree, config, rng, ws);
}

RitResult run_rit(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng, RitWorkspace& ws) {
  RitResult res;
  run_rit_into(job, asks, tree, config, rng, ws, res);
  return res;
}

void run_rit_into(const Job& job, std::span<const Ask> asks,
                  const tree::IncentiveTree& tree, const RitConfig& config,
                  rng::Rng& rng, RitWorkspace& ws, RitResult& out) {
  RIT_CHECK_MSG(tree.num_participants() == asks.size(),
                "tree has " << tree.num_participants()
                            << " participants but " << asks.size()
                            << " asks were submitted");
  run_auction_phase_into(job, asks, config, rng, ws, out);
  if (!out.success) return;  // fail closed: everything already zeroed

  std::vector<TaskType>& types = ws.types;
  types.resize(asks.size());
  for (std::size_t j = 0; j < asks.size(); ++j) types[j] = asks[j].type;
  tree_payments_into(tree, types, out.auction_payment, config.discount_base,
                     config.intra_threads, ws.payment, out.payment);
}

}  // namespace rit::core
