// Core model types of Sec. 3-A: asks, jobs, utilities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace rit::core {

/// A sealed-bid ask (t_j, k_j, a_j): user P_j offers to complete up to
/// `quantity` tasks of type `type` for at least `value` per task.
struct Ask {
  TaskType type;
  std::uint32_t quantity{0};  // k_j > 0 for a well-formed ask
  double value{0.0};          // a_j > 0 for a well-formed ask

  friend bool operator==(const Ask&, const Ask&) = default;
};

/// The sensing job J: a multiset over task types. demand(tau_i) is the
/// paper's m_i, the number of type-i tasks J requires.
class Job {
 public:
  /// demand[i] = m_i. The number of task types m is demand.size().
  explicit Job(std::vector<std::uint32_t> demand);

  /// A job demanding `per_type` tasks in each of `num_types` types (the
  /// Fig. 6-8 setup).
  static Job uniform(std::uint32_t num_types, std::uint32_t per_type);

  std::uint32_t num_types() const {
    return static_cast<std::uint32_t>(demand_.size());
  }

  std::uint32_t demand(TaskType t) const {
    RIT_CHECK(t.value < demand_.size());
    return demand_[t.value];
  }

  /// |J|: total number of tasks across all types.
  std::uint64_t total_tasks() const { return total_; }

  /// Number of types with non-zero demand (the m in eta = H^(1/m); types
  /// nobody asked for do not run auctions and cannot break truthfulness).
  std::uint32_t num_demanded_types() const { return demanded_types_; }

  const std::vector<std::uint32_t>& demand_vector() const { return demand_; }

 private:
  std::vector<std::uint32_t> demand_;
  std::uint64_t total_{0};
  std::uint32_t demanded_types_{0};
};

/// Upper bound on a single ask's claimed quantity. Extract materializes one
/// unit ask per claimed task, so an unvalidated 4-billion-unit claim would
/// be a memory-exhaustion attack on the platform; no phone completes a
/// million sensing tasks in one job either.
inline constexpr std::uint32_t kMaxAskQuantity = 1'000'000;

/// Validates an ask vector against a job: every ask references a type the
/// job knows about and has positive quantity (at most kMaxAskQuantity) and
/// positive finite value. Throws CheckFailure.
void validate_asks(const Job& job, std::span<const Ask> asks);

/// The paper's K_max as the platform can observe it: max_j k_j (0 if no
/// asks). The true max_j K_j is private; Sec. 3-B assumes k_j <= K_j.
std::uint32_t observed_k_max(std::span<const Ask> asks);

/// U_j = p_j - x_j * c_j.
inline double utility(double payment, std::uint32_t allocation,
                      double unit_cost) {
  return payment - static_cast<double>(allocation) * unit_cost;
}

}  // namespace rit::core
