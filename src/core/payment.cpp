#include "core/payment.h"

#include <algorithm>
#include <cmath>

// rit-lint: allow-file(testkit-only-injection)
#include "common/bug_inject.h"
#include "common/check.h"
#include "common/parallel.h"
#include "obs/obs.h"

namespace rit::core {

namespace {
void validate_inputs(const tree::IncentiveTree& tree,
                     std::span<const TaskType> types,
                     std::span<const double> auction_payments,
                     double discount_base) {
  RIT_CHECK_MSG(types.size() == tree.num_participants(),
                "types size " << types.size() << " != participants "
                              << tree.num_participants());
  RIT_CHECK(auction_payments.size() == types.size());
  RIT_CHECK_MSG(discount_base > 0.0 && discount_base < 1.0,
                "discount base must lie in (0,1), got " << discount_base);
}

/// base^depth with depth potentially in the thousands (chain-tree stress
/// tests): std::pow underflows cleanly to 0, which is the behaviour we want.
double discount(double base, std::uint32_t depth) {
  return std::pow(base, static_cast<double>(depth));
}
}  // namespace

std::vector<double> tree_payments_reference(
    const tree::IncentiveTree& tree, std::span<const TaskType> types,
    std::span<const double> auction_payments, double discount_base) {
  validate_inputs(tree, types, auction_payments, discount_base);
  std::vector<double> p(auction_payments.begin(), auction_payments.end());
  for (std::uint32_t i = 0; i < tree.num_participants(); ++i) {
    const std::uint32_t node = tree::node_of_participant(i);
    const double contribution =
        discount(discount_base, tree.depth(node)) * auction_payments[i];
    if (contribution == 0.0) continue;
    for (std::uint32_t anc = tree.parent(node); anc != 0;
         anc = tree.parent(anc)) {
      const std::uint32_t j = tree::participant_of_node(anc);
      if (types[j] != types[i]) p[j] += contribution;
    }
  }
  return p;
}

std::vector<double> tree_payments(const tree::IncentiveTree& tree,
                                  std::span<const TaskType> types,
                                  std::span<const double> auction_payments,
                                  double discount_base) {
  PaymentWorkspace ws;
  std::vector<double> p;
  tree_payments_into(tree, types, auction_payments, discount_base,
                     /*threads=*/1, ws, p);
  return p;
}

void tree_payments_into(const tree::IncentiveTree& tree,
                        std::span<const TaskType> types,
                        std::span<const double> auction_payments,
                        double discount_base, unsigned threads,
                        PaymentWorkspace& ws, std::vector<double>& out) {
  RIT_TRACE_SPAN("payment.extract");
  validate_inputs(tree, types, auction_payments, discount_base);
  const std::uint32_t n = tree.num_participants();
  out.assign(auction_payments.begin(), auction_payments.end());
  if (n == 0) return;

  // base^depth memo: depths repeat across the whole tree, so one pow per
  // distinct depth replaces one per node. std::pow is a pure function of
  // (base, depth), so the memo changes nothing bitwise.
  ws.depth_discount.resize(static_cast<std::size_t>(tree.max_depth()) + 1);
  for (std::size_t d = 0; d < ws.depth_discount.size(); ++d) {
#if RIT_BUG_ENABLED(RIT_BUG_DISCOUNT_DEPTH)
    // planted: every contribution discounted one level too deep
    ws.depth_discount[d] = discount(discount_base,
                                    static_cast<std::uint32_t>(d) + 1);
#else
    ws.depth_discount[d] = discount(discount_base,
                                    static_cast<std::uint32_t>(d));
#endif
  }

  // Contribution of each node laid out in preorder; a subtree is then a
  // contiguous range, so "sum of contributions in my subtree" is a prefix-
  // sum difference. Stage 1 computes per-node contributions into the
  // not-yet-scanned prefix slots — disjoint writes, so the fill runs
  // blocked across workers.
  const auto preorder = tree.preorder();
  const std::size_t nodes = preorder.size();
  ws.contrib_prefix.resize(nodes + 1);
  ws.contrib_prefix[0] = 0.0;
  parallel_for_blocked(
      nodes, threads,
      [&](std::uint64_t begin, std::uint64_t end, unsigned) {
        for (std::uint64_t pos = begin; pos < end; ++pos) {
          const std::uint32_t node = preorder[pos];
          double c = 0.0;
          if (node != 0) {
            const std::uint32_t i = tree::participant_of_node(node);
            c = ws.depth_discount[tree.depth(node)] * auction_payments[i];
          }
          ws.contrib_prefix[pos + 1] = c;
        }
      });

  // Stage 2 (serial): the same-type exclusion needs per-type sparse prefix
  // sums (positions of type-t nodes in preorder + running sums), flattened
  // into one CSR triple. Every non-root node lands in exactly one group,
  // and scanning positions in ascending order fills each group in the same
  // order the seed path's per-type push_backs did, so the partial sums are
  // bit-identical. The prefix is inclusive: type_prefix[k] sums the group's
  // entries up to and including k.
  std::uint32_t num_types = 0;
  for (TaskType t : types) num_types = std::max(num_types, t.value + 1);
  ws.type_offsets.assign(num_types + 1, 0);
  for (TaskType t : types) ws.type_offsets[t.value + 1] += 1;
  for (std::uint32_t t = 0; t < num_types; ++t) {
    ws.type_offsets[t + 1] += ws.type_offsets[t];
  }
  ws.type_cursor.assign(ws.type_offsets.begin(), ws.type_offsets.end() - 1);
  ws.type_positions.resize(n);
  ws.type_prefix.resize(n);
  for (std::size_t pos = 0; pos < nodes; ++pos) {
    const std::uint32_t node = preorder[pos];
    if (node == 0) continue;
    const std::uint32_t i = tree::participant_of_node(node);
    const double c = ws.contrib_prefix[pos + 1];  // still the raw contribution
    const std::uint32_t t = types[i].value;
    const std::uint32_t slot = ws.type_cursor[t]++;
    ws.type_positions[slot] = static_cast<std::uint32_t>(pos);
#if RIT_BUG_ENABLED(RIT_BUG_PREFIX_CARRY)
    // planted: the second slot of each group forgets the first entry
    ws.type_prefix[slot] =
        slot <= ws.type_offsets[t] + 1 ? c : ws.type_prefix[slot - 1] + c;
#else
    ws.type_prefix[slot] =
        slot == ws.type_offsets[t] ? c : ws.type_prefix[slot - 1] + c;
#endif
  }
  // Stage 3 (serial): scan the contributions into a prefix sum in place.
  for (std::size_t pos = 0; pos < nodes; ++pos) {
    ws.contrib_prefix[pos + 1] += ws.contrib_prefix[pos];
  }

  // Stage 4: per-participant subtree queries. p[i] is the only write and
  // indices are disjoint, so the query loop parallelizes bit-identically.
  parallel_for_blocked(
      n, threads, [&](std::uint64_t qb, std::uint64_t qe, unsigned) {
        for (std::uint64_t i = qb; i < qe; ++i) {
          const std::uint32_t node =
              tree::node_of_participant(static_cast<std::uint32_t>(i));
          if (tree.subtree_size(node) == 1) continue;  // leaf: no descendants
          const std::uint32_t begin = tree.preorder_index(node);
          const std::uint32_t end =
              begin + tree.subtree_size(node);  // exclusive
          // Whole-subtree contribution, then subtract the same-type share.
          // The node's own contribution is of its own type, so it cancels.
          const double total =
              ws.contrib_prefix[end] - ws.contrib_prefix[begin];
          const std::uint32_t t = types[i].value;
          const auto* pos_begin = ws.type_positions.data() + ws.type_offsets[t];
          const auto* pos_end =
              ws.type_positions.data() + ws.type_offsets[t + 1];
          const auto lo = std::lower_bound(pos_begin, pos_end, begin);
          const auto hi = std::lower_bound(pos_begin, pos_end, end);
          const double* prefix = ws.type_prefix.data() + ws.type_offsets[t];
          const double sum_hi =
              hi == pos_begin ? 0.0 : prefix[(hi - pos_begin) - 1];
          const double sum_lo =
              lo == pos_begin ? 0.0 : prefix[(lo - pos_begin) - 1];
          const double same_type = sum_hi - sum_lo;
          // The true reward is a sum of non-negative contributions; the
          // prefix-sum subtraction can dip a few ulps below zero, which must
          // not leak into a payment below p_i^A.
          out[i] += std::max(0.0, total - same_type);
        }
      });
}

double solicitation_premium(std::span<const double> payments,
                            std::span<const double> auction_payments) {
  RIT_CHECK(payments.size() == auction_payments.size());
  double premium = 0.0;
  for (std::size_t i = 0; i < payments.size(); ++i) {
    premium += payments[i] - auction_payments[i];
  }
  return premium;
}

}  // namespace rit::core
