#include "core/payment.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace rit::core {

namespace {
void validate_inputs(const tree::IncentiveTree& tree,
                     std::span<const TaskType> types,
                     std::span<const double> auction_payments,
                     double discount_base) {
  RIT_CHECK_MSG(types.size() == tree.num_participants(),
                "types size " << types.size() << " != participants "
                              << tree.num_participants());
  RIT_CHECK(auction_payments.size() == types.size());
  RIT_CHECK_MSG(discount_base > 0.0 && discount_base < 1.0,
                "discount base must lie in (0,1), got " << discount_base);
}

/// base^depth with depth potentially in the thousands (chain-tree stress
/// tests): std::pow underflows cleanly to 0, which is the behaviour we want.
double discount(double base, std::uint32_t depth) {
  return std::pow(base, static_cast<double>(depth));
}
}  // namespace

std::vector<double> tree_payments_reference(
    const tree::IncentiveTree& tree, std::span<const TaskType> types,
    std::span<const double> auction_payments, double discount_base) {
  validate_inputs(tree, types, auction_payments, discount_base);
  std::vector<double> p(auction_payments.begin(), auction_payments.end());
  for (std::uint32_t i = 0; i < tree.num_participants(); ++i) {
    const std::uint32_t node = tree::node_of_participant(i);
    const double contribution =
        discount(discount_base, tree.depth(node)) * auction_payments[i];
    if (contribution == 0.0) continue;
    for (std::uint32_t anc = tree.parent(node); anc != 0;
         anc = tree.parent(anc)) {
      const std::uint32_t j = tree::participant_of_node(anc);
      if (types[j] != types[i]) p[j] += contribution;
    }
  }
  return p;
}

std::vector<double> tree_payments(const tree::IncentiveTree& tree,
                                  std::span<const TaskType> types,
                                  std::span<const double> auction_payments,
                                  double discount_base) {
  RIT_TRACE_SPAN("payment.extract");
  validate_inputs(tree, types, auction_payments, discount_base);
  const std::uint32_t n = tree.num_participants();
  std::vector<double> p(auction_payments.begin(), auction_payments.end());
  if (n == 0) return p;

  // Contribution of each node laid out in preorder; a subtree is then a
  // contiguous range, so "sum of contributions in my subtree" is a prefix-
  // sum difference. The same-type exclusion is handled with per-type sparse
  // prefix sums (positions of type-t nodes in preorder + running sums).
  const auto preorder = tree.preorder();
  std::vector<double> contrib_prefix(preorder.size() + 1, 0.0);

  std::uint32_t num_types = 0;
  for (TaskType t : types) num_types = std::max(num_types, t.value + 1);
  std::vector<std::vector<std::uint32_t>> type_positions(num_types);
  std::vector<std::vector<double>> type_prefix(num_types);

  for (std::size_t pos = 0; pos < preorder.size(); ++pos) {
    const std::uint32_t node = preorder[pos];
    double c = 0.0;
    if (node != 0) {
      const std::uint32_t i = tree::participant_of_node(node);
      c = discount(discount_base, tree.depth(node)) * auction_payments[i];
      auto& positions = type_positions[types[i].value];
      auto& prefix = type_prefix[types[i].value];
      if (prefix.empty()) prefix.push_back(0.0);
      positions.push_back(static_cast<std::uint32_t>(pos));
      prefix.push_back(prefix.back() + c);
    }
    contrib_prefix[pos + 1] = contrib_prefix[pos] + c;
  }

  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t node = tree::node_of_participant(i);
    if (tree.subtree_size(node) == 1) continue;  // leaf: no descendants
    const std::uint32_t begin = tree.preorder_index(node);
    const std::uint32_t end = begin + tree.subtree_size(node);  // exclusive
    // Whole-subtree contribution, then subtract the same-type share. The
    // node's own contribution is of its own type, so it cancels.
    const double total = contrib_prefix[end] - contrib_prefix[begin];
    const auto& positions = type_positions[types[i].value];
    const auto& prefix = type_prefix[types[i].value];
    const auto lo = std::lower_bound(positions.begin(), positions.end(), begin) -
                    positions.begin();
    const auto hi = std::lower_bound(positions.begin(), positions.end(), end) -
                    positions.begin();
    const double same_type = prefix[hi] - prefix[lo];
    // The true reward is a sum of non-negative contributions; the prefix-sum
    // subtraction can dip a few ulps below zero, which must not leak into a
    // payment below p_i^A.
    p[i] += std::max(0.0, total - same_type);
  }
  return p;
}

double solicitation_premium(std::span<const double> payments,
                            std::span<const double> auction_payments) {
  RIT_CHECK(payments.size() == auction_payments.size());
  double premium = 0.0;
  for (std::size_t i = 0; i < payments.size(); ++i) {
    premium += payments[i] - auction_payments[i];
  }
  return premium;
}

}  // namespace rit::core
