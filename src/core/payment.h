// Payment determination phase (Algorithm 3, lines 22-28).
//
// The final payment of participant j is
//
//   p_j = p_j^A  +  sum over strict descendants i of j with t_i != t_j of
//                   base^(r_i) * p_i^A
//
// where r_i is the *absolute* depth of the contributor i (platform root at
// depth 0) and base = 1/2 in the paper. Two properties hinge on the details:
//
//  * contributors of the *same* task type are excluded — a user's sybil
//    identities necessarily share its type (Sec. 3-B), so they can never
//    feed tree rewards back to their owner (Lemma 6.4);
//  * the weight decays with absolute depth, so inserting a fake identity
//    above one's real descendants strictly shrinks their contribution.
//
// Two implementations are provided: a transparent O(N * depth) reference
// and the production O(N log N) pass used by run_rit(); property tests pin
// them to each other on random trees.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "tree/incentive_tree.h"

namespace rit::core {

/// Reference implementation: for every participant, walk its ancestors and
/// push its contribution up. O(sum of depths); used by tests and tiny demos.
std::vector<double> tree_payments_reference(
    const tree::IncentiveTree& tree, std::span<const TaskType> types,
    std::span<const double> auction_payments, double discount_base);

/// Production implementation: one preorder pass with per-type prefix sums
/// over the Euler layout; O(N log N) time, O(N) memory. Returns the final
/// payment vector p (participant-indexed, like the inputs).
std::vector<double> tree_payments(const tree::IncentiveTree& tree,
                                  std::span<const TaskType> types,
                                  std::span<const double> auction_payments,
                                  double discount_base);

/// Reusable scratch for tree_payments_into: the per-type prefix structure
/// flattened into CSR arrays (one offsets/positions/prefix triple instead
/// of a vector-of-vectors per type), plus the depth-discount memo. All
/// buffers regrow to high-water capacity once and are then reused, so a
/// steady-state payment pass performs no allocations.
struct PaymentWorkspace {
  std::vector<double> contrib_prefix;        ///< per preorder pos, size nodes+1
  std::vector<double> depth_discount;        ///< base^d memo, size max_depth+1
  std::vector<std::uint32_t> type_offsets;   ///< per type, size num_types+1
  std::vector<std::uint32_t> type_cursor;    ///< counting-sort scratch
  std::vector<std::uint32_t> type_positions; ///< flat, ascending per type
  std::vector<double> type_prefix;           ///< inclusive per-type prefix sums
};

/// Scratch-reusing, optionally parallel form of tree_payments. Writes the
/// final payments into `out` (resized to the participant count, reusing
/// capacity). The contribution fill and the per-participant subtree queries
/// run blocked across `threads` workers (resolve_threads semantics; <= 1
/// runs inline); every write is to a disjoint index, so the result is
/// bit-identical to the serial pass — and to tree_payments() — at any
/// thread count.
void tree_payments_into(const tree::IncentiveTree& tree,
                        std::span<const TaskType> types,
                        std::span<const double> auction_payments,
                        double discount_base, unsigned threads,
                        PaymentWorkspace& ws, std::vector<double>& out);

/// The solicitation premium sum_j (p_j - p_j^A). Sec. 7-C bounds it by
/// sum_j p_j^A; tests assert the bound on every run.
double solicitation_premium(std::span<const double> payments,
                            std::span<const double> auction_payments);

}  // namespace rit::core
