// Payment determination phase (Algorithm 3, lines 22-28).
//
// The final payment of participant j is
//
//   p_j = p_j^A  +  sum over strict descendants i of j with t_i != t_j of
//                   base^(r_i) * p_i^A
//
// where r_i is the *absolute* depth of the contributor i (platform root at
// depth 0) and base = 1/2 in the paper. Two properties hinge on the details:
//
//  * contributors of the *same* task type are excluded — a user's sybil
//    identities necessarily share its type (Sec. 3-B), so they can never
//    feed tree rewards back to their owner (Lemma 6.4);
//  * the weight decays with absolute depth, so inserting a fake identity
//    above one's real descendants strictly shrinks their contribution.
//
// Two implementations are provided: a transparent O(N * depth) reference
// and the production O(N log N) pass used by run_rit(); property tests pin
// them to each other on random trees.
#pragma once

#include <span>
#include <vector>

#include "common/ids.h"
#include "tree/incentive_tree.h"

namespace rit::core {

/// Reference implementation: for every participant, walk its ancestors and
/// push its contribution up. O(sum of depths); used by tests and tiny demos.
std::vector<double> tree_payments_reference(
    const tree::IncentiveTree& tree, std::span<const TaskType> types,
    std::span<const double> auction_payments, double discount_base);

/// Production implementation: one preorder pass with per-type prefix sums
/// over the Euler layout; O(N log N) time, O(N) memory. Returns the final
/// payment vector p (participant-indexed, like the inputs).
std::vector<double> tree_payments(const tree::IncentiveTree& tree,
                                  std::span<const TaskType> types,
                                  std::span<const double> auction_payments,
                                  double discount_base);

/// The solicitation premium sum_j (p_j - p_j^A). Sec. 7-C bounds it by
/// sum_j p_j^A; tests assert the bound on every run.
double solicitation_premium(std::span<const double> payments,
                            std::span<const double> auction_payments);

}  // namespace rit::core
