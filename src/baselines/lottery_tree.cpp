#include "baselines/lottery_tree.h"

#include "common/check.h"

namespace rit::baselines {

std::vector<double> lottery_tickets(const tree::IncentiveTree& tree,
                                    std::span<const double> contributions,
                                    const LotteryTreeParams& params) {
  RIT_CHECK(contributions.size() == tree.num_participants());
  RIT_CHECK(params.beta >= 0.0 && params.beta < 1.0);
  RIT_CHECK(params.prize >= 0.0);
  const std::uint32_t n = tree.num_participants();
  // Subtree contribution sums via reverse preorder.
  std::vector<double> subtree(tree.num_nodes(), 0.0);
  const auto pre = tree.preorder();
  for (std::size_t i = pre.size(); i > 0; --i) {
    const std::uint32_t node = pre[i - 1];
    if (node == 0) continue;
    const std::uint32_t j = tree::participant_of_node(node);
    RIT_CHECK_MSG(contributions[j] >= 0.0,
                  "negative contribution for participant " << j);
    subtree[node] += contributions[j];
    subtree[tree.parent(node)] += subtree[node];
  }
  std::vector<double> tickets(n, 0.0);
  for (std::uint32_t j = 0; j < n; ++j) {
    const std::uint32_t node = tree::node_of_participant(j);
    const double below = subtree[node] - contributions[j];
    tickets[j] = contributions[j] + params.beta * below;
  }
  return tickets;
}

std::vector<double> lottery_expected_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const LotteryTreeParams& params) {
  std::vector<double> tickets = lottery_tickets(tree, contributions, params);
  double total = 0.0;
  for (double t : tickets) total += t;
  if (total <= 0.0) {
    std::fill(tickets.begin(), tickets.end(), 0.0);
    return tickets;
  }
  for (double& t : tickets) t = params.prize * t / total;
  return tickets;
}

std::uint32_t lottery_draw(const tree::IncentiveTree& tree,
                           std::span<const double> contributions,
                           const LotteryTreeParams& params, rng::Rng& rng) {
  const std::vector<double> tickets =
      lottery_tickets(tree, contributions, params);
  double total = 0.0;
  for (double t : tickets) total += t;
  if (total <= 0.0) return kNoWinner;
  double point = rng.uniform01() * total;
  for (std::uint32_t j = 0; j < tickets.size(); ++j) {
    point -= tickets[j];
    if (point <= 0.0) return j;
  }
  return static_cast<std::uint32_t>(tickets.size()) - 1;  // fp edge
}

}  // namespace rit::baselines
