// The naive "truthful auction + incentive tree" composition of Sec. 4.
//
// This is the strawman RIT exists to replace: run a truthful k-th lowest
// price auction to obtain contributions (auction payments), then feed them
// into a contribution-based incentive tree. Sec. 4 shows the composition is
// neither sybil-proof (the auction lets identities manipulate the clearing
// price and the tree pays identities for each other — Fig. 2) nor truthful
// (the tree amplifies one's own auction payment, so overbidding to win can
// pay — Fig. 3). The Sec. 4 counterexample tests exercise both failures on
// this implementation and verify RIT resists them on the same instances.
#pragma once

#include <span>
#include <vector>

#include "baselines/contribution_tree.h"
#include "baselines/kth_price_auction.h"
#include "core/types.h"
#include "tree/incentive_tree.h"

namespace rit::baselines {

struct NaiveComboResult {
  bool success{false};
  std::vector<std::uint32_t> allocation;
  std::vector<double> auction_payment;
  std::vector<double> payment;

  double utility_of(std::uint32_t participant, double unit_cost) const {
    return core::utility(payment[participant], allocation[participant],
                         unit_cost);
  }
};

NaiveComboResult run_naive_combo(const core::Job& job,
                                 std::span<const core::Ask> asks,
                                 const tree::IncentiveTree& tree,
                                 const ContributionTreeParams& params = {});

}  // namespace rit::baselines
