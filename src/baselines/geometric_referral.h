// The MIT DARPA Network Challenge referral scheme (Sec. 1, [26]).
//
// Each contributor earns its full contribution value; every ancestor earns a
// geometrically halved share of it: the balloon finder gets $2000, its
// inviter $1000, the inviter's inviter $500, ... This mechanism won the 2009
// challenge but is the paper's canonical example of sybil-vulnerability:
// a finder who splits into a chain of fake identities collects the ancestor
// shares itself (Bob: $2000 -> $3000) while honest ancestors are diluted
// (Alice: $1000 -> $500). The intro's exact numbers are pinned by
// tests/geometric_referral_test.cpp and examples/balloon_challenge.cpp.
#pragma once

#include <span>
#include <vector>

#include "tree/incentive_tree.h"

namespace rit::baselines {

struct GeometricReferralParams {
  /// Each ancestor at distance d from the contributor earns
  /// decay^d * contribution (decay = 1/2 in the MIT scheme).
  double decay = 0.5;
};

/// rewards[j] = contributions[j] + sum over strict descendants i of
/// decay^(dist(j,i)) * contributions[i].
std::vector<double> geometric_referral_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const GeometricReferralParams& params = {});

}  // namespace rit::baselines
