// Lottery-based incentive trees (the [6] family of the related work).
//
// Douceur & Moscibroda's LotTree line rewards solicitation with *raffle
// tickets* instead of cash: each participant earns tickets from its own
// contribution plus a discounted share of its subtree's, and the platform
// draws one winner ticket-proportionally. Expected reward = prize *
// tickets / total. This module implements a *naive* parameterized member
// of that family — a baseline for comparison, NOT a reconstruction of the
// exact Pachira weighting. Deliberately so: this naive weighting is
// provably sybil-VULNERABLE (an identity chain holds undiscounted
// own-tickets while still collecting the discounted share of identities
// below it — lottery_tree_test pins the exact counterexample), which is
// precisely why Douceur & Moscibroda's real construction is intricate and
// why the source paper's Sec. 4 warns against casual compositions.
//
// Analytically useful because everything is closed-form: expected rewards,
// the solicitation incentive, and the effect of a sybil split can all be
// computed exactly (tests do).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::baselines {

struct LotteryTreeParams {
  /// Prize paid to the drawn winner.
  double prize = 1000.0;
  /// tickets_j = contribution_j + beta * (subtree contribution below j).
  /// beta in [0, 1); beta = 0 is a plain contribution raffle.
  double beta = 0.5;
};

/// Tickets per participant. Requires non-negative contributions.
std::vector<double> lottery_tickets(const tree::IncentiveTree& tree,
                                    std::span<const double> contributions,
                                    const LotteryTreeParams& params);

/// Expected reward per participant: prize * tickets / sum(tickets).
/// All-zero when nobody holds tickets.
std::vector<double> lottery_expected_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const LotteryTreeParams& params);

/// Draws the winning participant ticket-proportionally; returns the
/// participant index, or kNoWinner when total tickets are zero.
inline constexpr std::uint32_t kNoWinner = 0xffffffff;
std::uint32_t lottery_draw(const tree::IncentiveTree& tree,
                           std::span<const double> contributions,
                           const LotteryTreeParams& params, rng::Rng& rng);

}  // namespace rit::baselines
