#include "baselines/contribution_tree.h"

#include <cmath>

#include "common/check.h"

namespace rit::baselines {

std::vector<double> contribution_tree_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const ContributionTreeParams& params) {
  RIT_CHECK(contributions.size() == tree.num_participants());
  RIT_CHECK(params.beta > 0.0 && params.beta < 1.0);
  RIT_CHECK(params.own_weight >= 0.0);

  const std::uint32_t n = tree.num_participants();
  std::vector<double> reward(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    RIT_CHECK_MSG(contributions[i] >= 0.0,
                  "negative contribution for participant " << i);
    reward[i] = params.own_weight * contributions[i];
  }
  // Push every contribution up the ancestor chain. O(sum of depths) — the
  // baselines only run on test/demo instances, clarity wins over speed.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (contributions[i] == 0.0) continue;
    const std::uint32_t node = tree::node_of_participant(i);
    const double absolute =
        std::pow(params.beta, static_cast<double>(tree.depth(node)));
    double relative = 1.0;
    std::uint32_t distance = 0;
    for (std::uint32_t anc = tree.parent(node); anc != 0;
         anc = tree.parent(anc)) {
      relative *= params.beta;
      if (++distance > params.max_depth) break;
      const std::uint32_t j = tree::participant_of_node(anc);
      const double w =
          params.weighting == DepthWeighting::kRelative ? relative : absolute;
      reward[j] += w * contributions[i];
    }
  }
  return reward;
}

}  // namespace rit::baselines
