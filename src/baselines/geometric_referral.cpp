#include "baselines/geometric_referral.h"

#include "baselines/contribution_tree.h"
#include "common/check.h"

namespace rit::baselines {

std::vector<double> geometric_referral_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const GeometricReferralParams& params) {
  RIT_CHECK(params.decay > 0.0 && params.decay < 1.0);
  // The MIT scheme is the relative-depth contribution tree with the
  // contributor keeping exactly its own contribution.
  ContributionTreeParams ct;
  ct.own_weight = 1.0;
  ct.beta = params.decay;
  ct.weighting = DepthWeighting::kRelative;
  return contribution_tree_rewards(tree, contributions, ct);
}

}  // namespace rit::baselines
