// Contribution-based incentive-tree reward schemes (Sec. 2 / Sec. 4).
//
// A contribution-based incentive tree pays each participant a function of
// its own contribution and of its descendants' contributions [2,6,7,24].
// The exact reward formula printed in the paper's Sec. 4 examples
// (p_j = 2*p_j^A + ln(1 - p_j^A / sum_{T_j} p_i^A)) is corrupted in our
// source text — it diverges on the paper's own Fig. 2 numbers — so per
// DESIGN.md ambiguity #5 this module implements a parameterized family of
// the same shape:
//
//   reward_j = own_weight * c_j
//            + sum over strict descendants i of beta^(w(i,j)) * c_i
//
// with w(i,j) either the relative distance from j to i (the classic
// pyramid / MIT-scheme weighting) or i's absolute depth (RIT's weighting,
// minus RIT's same-type exclusion). The defaults (own_weight = 2,
// beta = 1/2, relative) reproduce both Sec. 4 failure modes when composed
// with a truthful auction — see naive_combo.h and the Sec. 4 tests.
#pragma once

#include <span>
#include <vector>

#include "tree/incentive_tree.h"

namespace rit::baselines {

enum class DepthWeighting {
  /// beta^(distance from collector j down to contributor i).
  kRelative,
  /// beta^(absolute depth of contributor i), as in RIT's payment phase.
  kAbsolute,
};

struct ContributionTreeParams {
  /// Multiplier on the participant's own contribution (the printed formula's
  /// leading 2*p_j^A). own_weight > 1 is what lets an untruthful bid that
  /// inflates one's own auction payment turn a profit (the Fig. 3 failure).
  double own_weight = 2.0;
  /// Geometric decay of descendant contributions.
  double beta = 0.5;
  DepthWeighting weighting = DepthWeighting::kRelative;
  /// Descendants farther than this many hops contribute nothing. 1 gives
  /// the direct-referral bonus of query-incentive networks [3]; the
  /// default (no cutoff) is the full pyramid.
  std::uint32_t max_depth = 0xffffffff;
};

/// Computes rewards for every participant given per-participant
/// contributions (>= 0). Participant j sits at tree node j+1.
std::vector<double> contribution_tree_rewards(
    const tree::IncentiveTree& tree, std::span<const double> contributions,
    const ContributionTreeParams& params);

}  // namespace rit::baselines
