#include "baselines/kth_price_auction.h"

#include <algorithm>
#include <numeric>

#include "core/extract.h"

namespace rit::baselines {

KthPriceOutcome kth_lowest_price_auction(std::span<const double> asks,
                                         std::uint32_t num_items) {
  KthPriceOutcome out;
  out.won.assign(asks.size(), false);
  if (num_items == 0) {
    out.priced = true;
    return out;
  }
  if (asks.size() < static_cast<std::size_t>(num_items) + 1) {
    return out;  // (m+1)-st lowest ask does not exist
  }
  std::vector<std::uint32_t> order(asks.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return asks[a] < asks[b];
                   });
  for (std::uint32_t i = 0; i < num_items; ++i) out.won[order[i]] = true;
  out.clearing_price = asks[order[num_items]];
  out.num_winners = num_items;
  out.priced = true;
  return out;
}

MultiUnitOutcome multi_unit_kth_price(const core::Job& job,
                                      std::span<const core::Ask> asks) {
  core::validate_asks(job, asks);
  MultiUnitOutcome out;
  out.allocation.assign(asks.size(), 0);
  out.auction_payment.assign(asks.size(), 0.0);
  out.clearing_price_by_type.assign(job.num_types(), 0.0);

  for (std::uint32_t ti = 0; ti < job.num_types(); ++ti) {
    const TaskType type{ti};
    const std::uint32_t m_i = job.demand(type);
    if (m_i == 0) continue;
    const core::ExtractedAsks alpha = core::extract(type, asks);
    const KthPriceOutcome round = kth_lowest_price_auction(alpha.values, m_i);
    if (!round.priced) {
      // Fail closed across the whole job, like RIT.
      std::fill(out.allocation.begin(), out.allocation.end(), 0u);
      std::fill(out.auction_payment.begin(), out.auction_payment.end(), 0.0);
      std::fill(out.clearing_price_by_type.begin(),
                out.clearing_price_by_type.end(), 0.0);
      return out;
    }
    out.clearing_price_by_type[ti] = round.clearing_price;
    for (std::size_t w = 0; w < alpha.size(); ++w) {
      if (!round.won[w]) continue;
      out.allocation[alpha.owner[w]] += 1;
      out.auction_payment[alpha.owner[w]] += round.clearing_price;
    }
  }
  out.success = true;
  return out;
}

}  // namespace rit::baselines
