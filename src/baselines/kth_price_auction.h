// The k-th lowest price (procurement) auction of Sec. 4-A [31].
//
// Winners are the m lowest unit asks; each is paid the (m+1)-st lowest ask.
// Truthful and individually rational for independent bidders, but a
// deterministic single-price rule — so a coalition (e.g. one user's sybil
// identities) can manipulate the clearing price, which is exactly the
// weakness Sec. 4 demonstrates and CRA's consensus rounding repairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"

namespace rit::baselines {

struct KthPriceOutcome {
  std::vector<bool> won;
  /// The (m+1)-st lowest ask value; 0 when there were no winners.
  double clearing_price{0.0};
  std::uint32_t num_winners{0};
  /// False when fewer than m+1 asks were submitted (the price would be
  /// undefined); no tasks are allocated in that case.
  bool priced{false};
};

/// Single-type auction over unit asks: allocate `num_items` tasks.
/// Ties between equal ask values are broken toward the lower index.
KthPriceOutcome kth_lowest_price_auction(std::span<const double> asks,
                                         std::uint32_t num_items);

struct MultiUnitOutcome {
  bool success{false};
  std::vector<std::uint32_t> allocation;       // per participant
  std::vector<double> auction_payment;         // per participant
  std::vector<double> clearing_price_by_type;  // per task type
};

/// Runs one k-th price auction per task type of `job` over the users' asks
/// (Extract expands multi-unit asks). Fails closed (all-zero) if any type
/// cannot be priced or filled, mirroring RIT's failure semantics so the two
/// mechanisms are comparable on the same instances.
MultiUnitOutcome multi_unit_kth_price(const core::Job& job,
                                      std::span<const core::Ask> asks);

}  // namespace rit::baselines
