#include "baselines/naive_combo.h"

#include "common/check.h"

namespace rit::baselines {

NaiveComboResult run_naive_combo(const core::Job& job,
                                 std::span<const core::Ask> asks,
                                 const tree::IncentiveTree& tree,
                                 const ContributionTreeParams& params) {
  RIT_CHECK(tree.num_participants() == asks.size());
  NaiveComboResult out;
  MultiUnitOutcome auction = multi_unit_kth_price(job, asks);
  out.success = auction.success;
  out.allocation = std::move(auction.allocation);
  out.auction_payment = std::move(auction.auction_payment);
  if (!out.success) {
    out.payment.assign(asks.size(), 0.0);
    return out;
  }
  out.payment = contribution_tree_rewards(tree, out.auction_payment, params);
  return out;
}

}  // namespace rit::baselines
