// EXTENSION (beyond the paper): quality-aware RIT by stratification.
//
// The paper's Sec. 3-C defers "data quality guarantee" to future research.
// This extension adds it WITHOUT touching the mechanism, by reduction: the
// platform certifies each user's sensing quality (sensor model, history),
// buckets qualities into tiers, and refines every task type (area) into
// (area, tier) sub-types with their own demands. RIT then runs verbatim on
// the refined instance, so truthfulness, sybil-proofness, IR, and the
// budget bound are all inherited — a high-quality demand can only be
// served by high-tier users.
//
// The one assumption that matters: quality is PLATFORM-CERTIFIED, not
// self-reported. Sybil identities of a user necessarily carry the owner's
// certified tier, so they still share the owner's refined type and the
// same-type exclusion of the payment phase keeps protecting Lemma 6.4.
// If users could self-report tiers, identities could scatter across tiers
// and collect each other's tree rewards — quality_aware_test demonstrates
// that failure mode explicitly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rit.h"
#include "core/types.h"

namespace rit::ext {

/// A quality tiering: boundaries[t] is the inclusive lower edge of tier t's
/// quality band; tiers are ordered ascending. E.g. {0.0, 0.5, 0.8} defines
/// low [0, .5), mid [.5, .8), high [.8, ...].
struct QualityTiers {
  std::vector<double> boundaries{0.0};

  std::uint32_t num_tiers() const {
    return static_cast<std::uint32_t>(boundaries.size());
  }
  /// Tier index of a certified quality value.
  std::uint32_t tier_of(double quality) const;
};

/// A quality-aware job: demand[area][tier] tasks of each (area, tier).
struct QualityJob {
  /// demand[a * tiers + t] = tasks of area a requiring tier >= exactly t.
  std::vector<std::uint32_t> demand;
  std::uint32_t areas{0};
  std::uint32_t tiers{0};

  std::uint32_t demand_of(std::uint32_t area, std::uint32_t tier) const;
};

struct StratifiedInstance {
  /// The refined job over areas*tiers types.
  core::Job job{std::vector<std::uint32_t>{1}};
  /// Asks with refined types: type = area * tiers + tier(quality_j).
  std::vector<core::Ask> asks;
  std::uint32_t tiers{0};
};

/// Builds the refined instance. asks[j].type is the user's area;
/// qualities[j] its certified quality. Throws on size mismatch or invalid
/// tiering.
StratifiedInstance stratify(const QualityJob& qjob,
                            std::span<const core::Ask> asks,
                            std::span<const double> qualities,
                            const QualityTiers& tiers);

/// Maps a refined type back to (area, tier).
inline std::uint32_t area_of(TaskType refined, std::uint32_t tiers) {
  return refined.value / tiers;
}
inline std::uint32_t tier_of_type(TaskType refined, std::uint32_t tiers) {
  return refined.value % tiers;
}

/// Convenience: stratify + run_rit on the refined instance. The returned
/// result is indexed by the ORIGINAL participant indices (the reduction
/// preserves ordering), so utilities/payments read off directly.
core::RitResult run_quality_aware_rit(const QualityJob& qjob,
                                      std::span<const core::Ask> asks,
                                      std::span<const double> qualities,
                                      const QualityTiers& tiers,
                                      const tree::IncentiveTree& tree,
                                      const core::RitConfig& config,
                                      rng::Rng& rng);

}  // namespace rit::ext
