#include "extensions/private_reporting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rit::ext {

double laplace_noise(double scale, rng::Rng& rng) {
  RIT_CHECK(scale > 0.0);
  // Inverse CDF: u ~ U(-1/2, 1/2), x = -b * sgn(u) * ln(1 - 2|u|).
  const double u = rng.uniform01() - 0.5;
  const double sign = u < 0.0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

PrivateSummary publish_private_summary(const core::RitResult& result,
                                       const PrivacyParams& params,
                                       rng::Rng& rng) {
  RIT_CHECK_MSG(params.epsilon > 0.0, "epsilon must be positive");
  RIT_CHECK_MSG(params.payment_clip > 0.0, "payment clip must be positive");

  PrivateSummary out;
  out.releases = 4;
  out.epsilon_spent = params.epsilon;
  const double eps_each = params.epsilon / out.releases;

  double participant_count = static_cast<double>(result.payment.size());
  double winner_count = 0.0;
  double clipped_payment = 0.0;
  double clipped_premium = 0.0;
  for (std::size_t j = 0; j < result.payment.size(); ++j) {
    if (result.allocation[j] > 0) winner_count += 1.0;
    clipped_payment += std::min(result.payment[j], params.payment_clip);
    clipped_premium += std::min(
        result.payment[j] - result.auction_payment[j], params.payment_clip);
  }
  // Sensitivities: counts change by 1 per user; clipped money sums by at
  // most the clip.
  out.noisy_participant_count =
      participant_count + laplace_noise(1.0 / eps_each, rng);
  out.noisy_winner_count = winner_count + laplace_noise(1.0 / eps_each, rng);
  out.noisy_total_payment =
      clipped_payment + laplace_noise(params.payment_clip / eps_each, rng);
  out.noisy_total_premium =
      clipped_premium + laplace_noise(params.payment_clip / eps_each, rng);
  return out;
}

}  // namespace rit::ext
