#include "extensions/quality_aware.h"

#include <algorithm>

#include "common/check.h"

namespace rit::ext {

std::uint32_t QualityTiers::tier_of(double quality) const {
  RIT_CHECK_MSG(!boundaries.empty(), "tiering needs at least one tier");
  RIT_CHECK_MSG(quality >= boundaries.front(),
                "quality " << quality << " below the lowest tier edge "
                           << boundaries.front());
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), quality);
  return static_cast<std::uint32_t>(it - boundaries.begin()) - 1;
}

std::uint32_t QualityJob::demand_of(std::uint32_t area,
                                    std::uint32_t tier) const {
  RIT_CHECK(area < areas && tier < tiers);
  return demand[area * tiers + tier];
}

StratifiedInstance stratify(const QualityJob& qjob,
                            std::span<const core::Ask> asks,
                            std::span<const double> qualities,
                            const QualityTiers& tiers) {
  RIT_CHECK(asks.size() == qualities.size());
  RIT_CHECK(qjob.areas >= 1);
  RIT_CHECK_MSG(qjob.tiers == tiers.num_tiers(),
                "job declares " << qjob.tiers << " tiers but the tiering has "
                                << tiers.num_tiers());
  RIT_CHECK_MSG(qjob.demand.size() ==
                    static_cast<std::size_t>(qjob.areas) * qjob.tiers,
                "quality job demand matrix has wrong size");
  RIT_CHECK_MSG(std::is_sorted(tiers.boundaries.begin(),
                               tiers.boundaries.end()),
                "tier boundaries must be ascending");

  StratifiedInstance out;
  out.tiers = qjob.tiers;
  out.job = core::Job(qjob.demand);
  out.asks.reserve(asks.size());
  for (std::size_t j = 0; j < asks.size(); ++j) {
    RIT_CHECK_MSG(asks[j].type.value < qjob.areas,
                  "ask " << j << " references unknown area "
                         << asks[j].type.value);
    const std::uint32_t tier = tiers.tier_of(qualities[j]);
    out.asks.push_back(core::Ask{
        TaskType{asks[j].type.value * qjob.tiers + tier}, asks[j].quantity,
        asks[j].value});
  }
  return out;
}

core::RitResult run_quality_aware_rit(const QualityJob& qjob,
                                      std::span<const core::Ask> asks,
                                      std::span<const double> qualities,
                                      const QualityTiers& tiers,
                                      const tree::IncentiveTree& tree,
                                      const core::RitConfig& config,
                                      rng::Rng& rng) {
  const StratifiedInstance refined = stratify(qjob, asks, qualities, tiers);
  return core::run_rit(refined.job, refined.asks, tree, config, rng);
}

}  // namespace rit::ext
