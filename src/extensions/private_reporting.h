// EXTENSION (beyond the paper): differentially private result reporting.
//
// The paper's Sec. 3-C defers "privacy protection" to future research. The
// payments themselves must stay exact (they move money), but everything the
// platform *publishes* about a campaign — total spend, participation
// counts, per-area allocation — leaks information about individual bids.
// This module publishes those aggregates under epsilon-differential
// privacy with the Laplace mechanism over clipped per-user contributions:
// neighboring runs (one user's ask added/removed/changed) shift each
// clipped aggregate by at most its stated sensitivity.
//
// Scope note: this protects the PUBLISHED SUMMARY only. It does not make
// the mechanism itself private (payments to participants necessarily
// reveal information to their recipients), and composing many published
// summaries consumes budget linearly — standard DP accounting applies.
#pragma once

#include <cstdint>
#include <span>

#include "core/rit.h"
#include "rng/rng.h"

namespace rit::ext {

/// One Laplace(b) variate with scale b = sensitivity / epsilon.
double laplace_noise(double scale, rng::Rng& rng);

struct PrivacyParams {
  /// Total privacy budget for one published summary; split evenly across
  /// the released statistics.
  double epsilon = 1.0;
  /// Per-user payment clip: a user's payment contributes to published sums
  /// as min(payment, payment_clip). Bounds the sensitivity of money
  /// aggregates; pick ~ the 99th percentile of expected payments.
  double payment_clip = 100.0;
};

struct PrivateSummary {
  /// Number of statistics the budget was split across.
  std::uint32_t releases{0};
  double epsilon_spent{0.0};

  double noisy_participant_count{0.0};
  double noisy_winner_count{0.0};
  /// Sum of clipped payments + Laplace noise.
  double noisy_total_payment{0.0};
  /// Sum of clipped solicitation rewards + noise.
  double noisy_total_premium{0.0};
};

/// Publishes an epsilon-DP summary of a mechanism run. Deterministic given
/// `rng`. Throws on non-positive epsilon/clip.
PrivateSummary publish_private_summary(const core::RitResult& result,
                                       const PrivacyParams& params,
                                       rng::Rng& rng);

}  // namespace rit::ext
