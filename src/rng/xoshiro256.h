// xoshiro256** 1.0 (Blackman & Vigna, 2018; public-domain reference code).
//
// Chosen over std::mt19937_64 because (a) the raw engine output is defined by
// the algorithm, not the standard library implementation, so simulations are
// reproducible across toolchains, and (b) it is ~2x faster, which matters for
// the Fig. 6-8 sweeps that draw hundreds of millions of variates.
#pragma once

#include <cstdint>

#include "rng/splitmix64.h"

namespace rit::rng {

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) {
    // Seeding through SplitMix64 per the authors' recommendation; avoids the
    // all-zero state (SplitMix64 never emits four zero words in a row from
    // distinct states, and we additionally guard below).
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 steps (the authors' jump polynomial):
  /// 2^128 jumped copies of one seed yield non-overlapping subsequences,
  /// the textbook way to hand independent streams to parallel workers.
  constexpr void jump() {
    constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0;
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    std::uint64_t s3 = 0;
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          s0 ^= s_[0];
          s1 ^= s_[1];
          s2 ^= s_[2];
          s3 ^= s_[3];
        }
        (*this)();
      }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace rit::rng
