// Rng: the single randomness source used throughout the library.
//
// All distribution code is written out explicitly (no <random> distribution
// classes) because the standard leaves their algorithms unspecified — two
// standard libraries may produce different streams from the same engine.
// Every simulation result in EXPERIMENTS.md is replayable from its seed on
// any conforming C++20 toolchain.
//
// Rng objects are cheap (32 bytes of state) and passed by reference into
// every randomized routine; `split()` derives statistically independent
// children for per-trial / per-component streams so that adding draws in one
// component does not perturb another (the "common random numbers" variance
// reduction the paired truthfulness tests rely on).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "rng/xoshiro256.h"

namespace rit::rng {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this stream was created from (for diagnostics / replay).
  std::uint64_t seed() const { return seed_; }

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64() { return engine_(); }

  /// Derives an independent child stream. Deterministic: the i-th split of a
  /// given Rng state is always the same stream.
  Rng split() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Lemire's nearly-divisionless method with rejection — exactly uniform.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) {
    return static_cast<std::size_t>(uniform_u64(n));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Uniform double in (lo, hi]: the paper draws costs from (0, 10] and
  /// capabilities from (0, 20], both half-open on the left.
  double uniform_real_left_open(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given mean (> 0); inverse-CDF method, so
  /// one uniform draw per variate (stream-accounting stays simple).
  double exponential(double mean);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Chooses `k` distinct indices uniformly from [0, n) (k <= n), in
  /// selection order (not sorted). Uses partial Fisher-Yates: O(n) memory,
  /// O(k) swaps.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Same draws, but fills caller-owned buffers: `pool` is the O(n)
  /// Fisher-Yates scratch and `out` receives the k selected indices. At
  /// steady state (buffers at capacity) the call is allocation-free, which
  /// is what the CRA round hot path needs (core::CraWorkspace).
  void sample_without_replacement_into(std::size_t n, std::size_t k,
                                       std::vector<std::size_t>& pool,
                                       std::vector<std::size_t>& out);

 private:
  Xoshiro256StarStar engine_;
  std::uint64_t seed_;
};

}  // namespace rit::rng
