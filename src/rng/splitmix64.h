// SplitMix64 (Steele, Lea, Flood 2014; public-domain reference by Vigna).
//
// Used only to expand a user-provided 64-bit seed into the 256-bit state of
// xoshiro256** and to derive independent child seeds. Never used as the
// simulation generator itself.
#pragma once

#include <cstdint>

namespace rit::rng {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace rit::rng
