#include "rng/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rit::rng {

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  RIT_CHECK(bound > 0);
  // Lemire 2019: multiply-shift with rejection of the biased low region.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RIT_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~std::uint64_t{0}) return static_cast<std::int64_t>(next_u64());
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_u64(span + 1));
}

double Rng::uniform_real(double lo, double hi) {
  RIT_CHECK(lo < hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::uniform_real_left_open(double lo, double hi) {
  RIT_CHECK(lo < hi);
  // 1 - U is in (0, 1]; scale into (lo, hi].
  double u = 1.0 - uniform01();
  return lo + (hi - lo) * u;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  RIT_CHECK(mean > 0.0);
  // 1 - U in (0, 1], so the log argument never hits zero.
  return -mean * std::log(1.0 - uniform01());
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out;
  sample_without_replacement_into(n, k, pool, out);
  return out;
}

void Rng::sample_without_replacement_into(std::size_t n, std::size_t k,
                                          std::vector<std::size_t>& pool,
                                          std::vector<std::size_t>& out) {
  RIT_CHECK_MSG(k <= n, "cannot sample " << k << " from " << n);
  pool.resize(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  out.clear();
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
}

}  // namespace rit::rng
