#include "testkit/invariants.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/num_io.h"
#include "tree/incentive_tree.h"

namespace rit::testkit {
namespace {

constexpr double kRelTol = 1e-9;

double tol_for(double scale) { return kRelTol * std::max(std::abs(scale), 1.0); }

void violate(InvariantReport& report, const std::string& name,
             const std::string& detail) {
  report.violations.push_back(InvariantViolation{name, detail});
}

}  // namespace

InvariantReport check_invariants(const FuzzCase& c,
                                 const core::RitResult& result) {
  InvariantReport report;
  const std::size_t n = c.asks.size();
  if (result.allocation.size() != n || result.auction_payment.size() != n ||
      result.payment.size() != n || c.costs.size() != n ||
      c.parents.size() != n) {
    violate(report, "shape", "result/case vector sizes disagree");
    return report;
  }

  // Finiteness: a NaN anywhere poisons every downstream aggregate.
  for (std::size_t j = 0; j < n; ++j) {
    if (!std::isfinite(result.auction_payment[j]) ||
        !std::isfinite(result.payment[j])) {
      violate(report, "finiteness",
              "participant " + format_u64(j) + " has a non-finite payment");
      return report;
    }
  }

  // Allocation bounds: x_j <= k_j always; per-type totals == m_i exactly
  // when the run succeeded (budget feasibility of Alg. 3).
  for (std::size_t j = 0; j < n; ++j) {
    if (result.allocation[j] > c.asks[j].quantity) {
      violate(report, "allocation-bounds",
              "participant " + format_u64(j) + " allocated " +
                  format_u64(result.allocation[j]) + " > quantity " +
                  format_u64(c.asks[j].quantity));
    }
  }
  std::vector<std::uint64_t> per_type(c.demand.size(), 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (c.asks[j].type.value < per_type.size()) {
      per_type[c.asks[j].type.value] += result.allocation[j];
    }
  }
  if (result.success) {
    for (std::size_t t = 0; t < c.demand.size(); ++t) {
      if (per_type[t] != c.demand[t]) {
        violate(report, "allocation-bounds",
                "success with type " + format_u64(t) + " allocated " +
                    format_u64(per_type[t]) + " != demand " +
                    format_u64(c.demand[t]));
      }
    }
  }

  // Fail-closed zeroing (Alg. 3 lines 26-28).
  if (!result.success && c.config.zero_on_failure) {
    for (std::size_t j = 0; j < n; ++j) {
      if (result.allocation[j] != 0 || result.auction_payment[j] != 0.0 ||
          result.payment[j] != 0.0) {
        violate(report, "fail-closed",
                "failed run kept a non-zero allocation/payment at "
                "participant " +
                    format_u64(j));
        break;
      }
    }
  }

  // Success consistency: the flag must agree with the per-type ledger.
  bool ledger_complete = true;
  for (const core::TypeAuctionInfo& info : result.type_info) {
    if (info.allocated != info.demanded) ledger_complete = false;
  }
  if (result.type_info.size() == c.demand.size() &&
      result.success != ledger_complete) {
    violate(report, "success-consistency",
            std::string("success flag is ") +
                (result.success ? "true" : "false") +
                " but the per-type ledger says otherwise");
  }

  // Payment floor: tree shares are sums of non-negative contributions, so
  // p_j >= p_j^A >= 0.
  for (std::size_t j = 0; j < n; ++j) {
    if (result.auction_payment[j] < -tol_for(0.0)) {
      violate(report, "payment-floor",
              "negative auction payment at participant " + format_u64(j));
    }
    if (result.payment[j] <
        result.auction_payment[j] - tol_for(result.auction_payment[j])) {
      violate(report, "payment-floor",
              "participant " + format_u64(j) + " paid " +
                  format_double_g17(result.payment[j]) +
                  " below its auction payment " +
                  format_double_g17(result.auction_payment[j]));
    }
  }

  // Individual rationality (Thm 1): a truthful participant (c_j <= a_j)
  // never ends with negative utility — every unit it wins clears at a
  // price at or above its ask.
  for (std::size_t j = 0; j < n; ++j) {
    if (c.costs[j] > c.asks[j].value) continue;  // not a truthful bid
    const double utility = result.utility_of(static_cast<std::uint32_t>(j),
                                             c.costs[j]);
    if (utility < -tol_for(result.payment[j])) {
      violate(report, "individual-rationality",
              "truthful participant " + format_u64(j) +
                  " has negative utility " + format_double_g17(utility));
    }
  }

  // Share algebra (Sec. 7-C): the solicitation premium is the sum of the
  // per-participant tree shares, and each descendant at depth d feeds at
  // most its (d-1) distinct-type strict ancestors base^d of its auction
  // payment, so the premium is bounded by
  // sum_j (depth_j - 1) * base^depth_j * p_j^A.
  double premium = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    premium += result.payment[j] - result.auction_payment[j];
  }
  const double reported =
      result.total_payment() - result.total_auction_payment();
  if (std::abs(premium - reported) > tol_for(reported)) {
    violate(report, "share-conservation",
            "premium from per-participant shares " +
                format_double_g17(premium) + " != total_payment - "
                "total_auction_payment " +
                format_double_g17(reported));
  }
  if (premium < -tol_for(0.0)) {
    violate(report, "share-algebra",
            "negative solicitation premium " + format_double_g17(premium));
  }
  try {
    std::vector<std::uint32_t> tree_parents(n + 1, 0);
    for (std::size_t j = 0; j < n; ++j) tree_parents[j + 1] = c.parents[j];
    const tree::IncentiveTree tree(tree_parents);
    double bound = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t d =
          tree.depth(tree::node_of_participant(static_cast<std::uint32_t>(j)));
      if (d < 2) continue;  // depth-1 nodes have no non-root ancestor
      bound += static_cast<double>(d - 1) *
               std::pow(c.config.discount_base, static_cast<double>(d)) *
               result.auction_payment[j];
    }
    if (premium > bound + tol_for(bound)) {
      violate(report, "share-algebra",
              "premium " + format_double_g17(premium) +
                  " exceeds the geometric bound " + format_double_g17(bound));
    }
  } catch (const CheckFailure&) {
    violate(report, "shape", "case parent vector is not a valid tree");
  }

  // Probability floor: achieved_probability is a probability, and under
  // the theoretical budget with healthy parameters the whole phase keeps
  // the H guarantee (Lemma 6.3).
  if (!(result.achieved_probability >= -tol_for(1.0) &&
        result.achieved_probability <= 1.0 + tol_for(1.0))) {
    violate(report, "probability-floor",
            "achieved_probability " +
                format_double_g17(result.achieved_probability) +
                " outside [0,1]");
  }
  if (c.config.round_budget_policy == core::RoundBudgetPolicy::kTheoretical &&
      !result.probability_degraded &&
      result.achieved_probability < c.config.h - tol_for(c.config.h)) {
    violate(report, "probability-floor",
            "achieved_probability " +
                format_double_g17(result.achieved_probability) +
                " below configured H " + format_double_g17(c.config.h) +
                " without a degraded flag");
  }
  return report;
}

}  // namespace rit::testkit
