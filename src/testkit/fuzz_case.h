// FuzzCase: one self-contained mechanism scenario — the unit the fuzzer
// generates, mutates, shrinks, and persists as a repro file.
//
// A case carries everything a deterministic replay needs: the job's demand
// vector, the asks, each participant's true unit cost (for the IR
// invariant), the tree's parent vector, the full RitConfig, and the
// mechanism seed. The on-disk format is a line-keyed text file
// ("ritcs-fuzzcase v1") with hex-float doubles and an FNV-1a checksum, so
// a committed repro reloads bit-identically on any platform and a corrupt
// or hand-mangled file is rejected rather than silently misreplayed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/types.h"

namespace rit::testkit {

struct FuzzCase {
  /// Job demand vector: demand[t] = m_t. Size = number of task types.
  std::vector<std::uint32_t> demand;
  /// Sealed bids, one per participant (participant j = tree node j+1).
  std::vector<core::Ask> asks;
  /// True unit costs c_j; the generator keeps c_j <= a_j so the IR
  /// invariant (Thm 1) applies to every participant.
  std::vector<double> costs;
  /// parents[j] = parent tree node of node j+1; always < j+1 so the
  /// vector is a valid tree by construction.
  std::vector<std::uint32_t> parents;
  core::RitConfig config;
  /// Seed of the rng::Rng the mechanism consumes.
  std::uint64_t mech_seed{0};
  /// Failure signature recorded by the fuzzer when this case was written
  /// as a repro (empty for corpus-only cases). --expect-repro replays
  /// against it.
  std::string signature;
};

/// Serializes to the "ritcs-fuzzcase v1" text format. Deterministic:
/// identical cases serialize to identical bytes.
std::string serialize_case(const FuzzCase& c);

/// Parses a serialized case; verifies the version line and the checksum.
/// Empty optional on any malformed input.
std::optional<FuzzCase> parse_case(const std::string& text);

/// Reads and parses a case file; empty optional if unreadable/malformed.
std::optional<FuzzCase> load_case_file(const std::string& path);

/// Atomically writes `c` to `path` (write-fsync-rename).
void write_case_file(const std::string& path, const FuzzCase& c);

/// FNV-1a fingerprint of the case's serialized payload (signature line
/// excluded, so shrinking metadata does not perturb identity).
std::uint64_t case_hash(const FuzzCase& c);

}  // namespace rit::testkit
