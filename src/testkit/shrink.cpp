#include "testkit/shrink.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace rit::testkit {

FuzzCase remove_participants(const FuzzCase& c,
                             const std::vector<char>& keep) {
  const std::size_t n = c.asks.size();
  RIT_CHECK(keep.size() == n);
  std::vector<std::uint32_t> node_map(n + 1, 0);
  std::uint32_t next = 1;
  for (std::size_t j = 0; j < n; ++j) {
    if (keep[j]) node_map[j + 1] = next++;
  }
  FuzzCase out;
  out.demand = c.demand;
  out.config = c.config;
  out.mech_seed = c.mech_seed;
  for (std::size_t j = 0; j < n; ++j) {
    if (!keep[j]) continue;
    std::uint32_t p = c.parents[j];
    while (p != 0 && !keep[p - 1]) p = c.parents[p - 1];
    out.asks.push_back(c.asks[j]);
    out.costs.push_back(c.costs[j]);
    out.parents.push_back(node_map[p]);
  }
  return out;
}

namespace {

struct Budget {
  std::uint32_t used{0};
  std::uint32_t max{0};
  bool spent() const { return used >= max; }
};

/// Evaluates `cand`; accepts it into `best` iff the failure class is
/// preserved. Returns whether the candidate was accepted.
bool try_accept(const FuzzCase& cand, const std::string& signature,
                const CaseCheck& check, FuzzCase& best, Budget& budget) {
  if (budget.spent()) return false;
  ++budget.used;
  if (check(cand) != signature) return false;
  best = cand;
  return true;
}

bool pass_remove_participants(const std::string& signature,
                              const CaseCheck& check, FuzzCase& best,
                              Budget& budget) {
  bool progress = false;
  std::size_t chunk = std::max<std::size_t>(best.asks.size() / 2, 1);
  while (chunk >= 1 && !budget.spent()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < best.asks.size() && !budget.spent();) {
      const std::size_t n = best.asks.size();
      if (n <= 1) return progress;  // a case needs at least one ask
      const std::size_t len = std::min(chunk, n - start);
      if (len == n) {  // never try removing everyone
        start += len;
        continue;
      }
      std::vector<char> keep(n, 1);
      for (std::size_t j = start; j < start + len; ++j) keep[j] = 0;
      if (try_accept(remove_participants(best, keep), signature, check, best,
                     budget)) {
        progress = removed_any = true;
        // best shrank; retry the same start position at the new size
      } else {
        start += len;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = chunk == 1 ? 1 : chunk / 2;
    if (chunk == 1 && removed_any) continue;
  }
  return progress;
}

bool pass_reduce_demand(const std::string& signature, const CaseCheck& check,
                        FuzzCase& best, Budget& budget) {
  bool progress = false;
  for (std::size_t t = 0; t < best.demand.size() && !budget.spent(); ++t) {
    while (best.demand[t] > 0 && !budget.spent()) {
      FuzzCase cand = best;
      // Jump to zero first; fall back to halving toward it.
      cand.demand[t] = 0;
      if (try_accept(cand, signature, check, best, budget)) {
        progress = true;
        break;
      }
      cand = best;
      cand.demand[t] = best.demand[t] / 2;
      if (cand.demand[t] == best.demand[t]) break;
      if (!try_accept(cand, signature, check, best, budget)) break;
      progress = true;
    }
  }
  return progress;
}

bool pass_reduce_quantity(const std::string& signature,
                          const CaseCheck& check, FuzzCase& best,
                          Budget& budget) {
  bool progress = false;
  for (std::size_t j = 0; j < best.asks.size() && !budget.spent(); ++j) {
    if (best.asks[j].quantity <= 1) continue;
    FuzzCase cand = best;
    cand.asks[j].quantity = 1;
    progress |= try_accept(cand, signature, check, best, budget);
  }
  return progress;
}

bool pass_canonicalize_values(const std::string& signature,
                              const CaseCheck& check, FuzzCase& best,
                              Budget& budget) {
  bool progress = false;
  for (std::size_t j = 0; j < best.asks.size() && !budget.spent(); ++j) {
    if (best.asks[j].value == 1.0 && best.costs[j] == 1.0) continue;
    FuzzCase cand = best;
    cand.asks[j].value = 1.0;
    cand.costs[j] = 1.0;
    progress |= try_accept(cand, signature, check, best, budget);
  }
  return progress;
}

bool pass_simplify_tree(const std::string& signature, const CaseCheck& check,
                        FuzzCase& best, Budget& budget) {
  bool progress = false;
  // Full flatten first: if the failure survives without any solicitation
  // structure, the tree was irrelevant.
  {
    FuzzCase cand = best;
    bool flat = true;
    for (std::uint32_t& p : cand.parents) {
      if (p != 0) flat = false;
      p = 0;
    }
    if (!flat) progress |= try_accept(cand, signature, check, best, budget);
  }
  // Otherwise hoist node by node one level toward the root.
  for (std::size_t j = 0; j < best.parents.size() && !budget.spent(); ++j) {
    const std::uint32_t p = best.parents[j];
    if (p == 0) continue;
    FuzzCase cand = best;
    cand.parents[j] = best.parents[p - 1];  // grandparent
    progress |= try_accept(cand, signature, check, best, budget);
  }
  return progress;
}

bool pass_canonicalize_config(const std::string& signature,
                              const CaseCheck& check, FuzzCase& best,
                              Budget& budget) {
  bool progress = false;
  const core::RitConfig defaults;
  auto try_knob = [&](auto setter) {
    if (budget.spent()) return;
    FuzzCase cand = best;
    setter(cand.config);
    if (serialize_case(cand) == serialize_case(best)) return;
    progress |= try_accept(cand, signature, check, best, budget);
  };
  try_knob([&](core::RitConfig& cfg) { cfg.h = defaults.h; });
  try_knob([&](core::RitConfig& cfg) {
    cfg.discount_base = defaults.discount_base;
  });
  try_knob([&](core::RitConfig& cfg) {
    cfg.consensus_log_base = defaults.consensus_log_base;
  });
  try_knob([&](core::RitConfig& cfg) { cfg.price_mode = defaults.price_mode; });
  try_knob([&](core::RitConfig& cfg) {
    cfg.round_budget_policy = defaults.round_budget_policy;
  });
  try_knob([&](core::RitConfig& cfg) {
    cfg.empty_sample = defaults.empty_sample;
  });
  try_knob([&](core::RitConfig& cfg) {
    cfg.stall_round_limit = defaults.stall_round_limit;
  });
  try_knob([&](core::RitConfig& cfg) {
    cfg.clamp_min_one_round = defaults.clamp_min_one_round;
  });
  try_knob([&](core::RitConfig& cfg) {
    cfg.zero_on_failure = defaults.zero_on_failure;
  });
  try_knob([&](core::RitConfig& cfg) { cfg.k_max_override.reset(); });
  try_knob([&](core::RitConfig& cfg) { cfg.intra_threads = 1; });
  return progress;
}

}  // namespace

ShrinkResult shrink(const FuzzCase& failing, const std::string& signature,
                    const CaseCheck& check, std::uint32_t max_checks) {
  ShrinkResult result;
  result.best = failing;
  result.best.signature = signature;
  Budget budget{0, max_checks};
  bool progress = true;
  while (progress && !budget.spent()) {
    progress = false;
    progress |= pass_remove_participants(signature, check, result.best, budget);
    progress |= pass_reduce_demand(signature, check, result.best, budget);
    progress |= pass_reduce_quantity(signature, check, result.best, budget);
    progress |= pass_canonicalize_values(signature, check, result.best, budget);
    progress |= pass_simplify_tree(signature, check, result.best, budget);
    progress |=
        pass_canonicalize_config(signature, check, result.best, budget);
    result.best.signature = signature;  // passes clear it via copies
  }
  result.checks_used = budget.used;
  result.best.signature = signature;
  return result;
}

}  // namespace rit::testkit
