#include "testkit/mutate.h"

#include <algorithm>
#include <cmath>

#include "graph/generators.h"
#include "tree/builders.h"
#include "tree/incentive_tree.h"

namespace rit::testkit {
namespace {

using core::Ask;

double random_cluster_value(rng::Rng& rng) {
  return rng.uniform_real_left_open(0.1, 10.0);
}

/// Costs stay at or below the ask value so the Thm 1 IR invariant applies
/// to every participant the generator produces.
double random_cost_for(double value, rng::Rng& rng) {
  return value * rng.uniform_real(0.3, 1.0);
}

std::uint32_t random_quantity(const GenParams& params, rng::Rng& rng) {
  // Mostly small; an occasional heavy asker stresses Extract's expansion
  // and the K_max-driven round budget.
  if (rng.bernoulli(0.05)) {
    return 1 + static_cast<std::uint32_t>(rng.uniform_index(60));
  }
  return 1 + static_cast<std::uint32_t>(rng.uniform_index(params.max_quantity));
}

/// Tree shape families. parents[j] is the parent node of node j+1 and is
/// always <= j, so every family yields a valid tree by construction.
std::vector<std::uint32_t> random_parents(std::uint32_t n, rng::Rng& rng) {
  std::vector<std::uint32_t> parents(n, 0);
  switch (rng.uniform_index(6)) {
    case 0:  // flat: everyone under the platform
      break;
    case 1:  // chain: the deepest possible tree
      for (std::uint32_t j = 0; j < n; ++j) parents[j] = j;
      break;
    case 2:  // star: one hub, everyone else at depth 2
      for (std::uint32_t j = 1; j < n; ++j) parents[j] = 1;
      break;
    case 3: {  // comb: a spine with a tooth at every vertebra
      std::uint32_t spine = 0;
      for (std::uint32_t j = 0; j < n; ++j) {
        parents[j] = spine;
        if (j % 2 == 0) spine = j + 1;
      }
      break;
    }
    case 4:  // random recursive tree
      for (std::uint32_t j = 1; j < n; ++j) {
        parents[j] = rng.bernoulli(0.25)
                         ? 0
                         : 1 + static_cast<std::uint32_t>(rng.uniform_index(j));
      }
      break;
    default: {  // solicitation over a scale-free social graph (Sec. 7-A)
      const auto edges_per_node =
          1 + static_cast<std::uint32_t>(rng.uniform_index(3));
      rng::Rng graph_rng = rng.split();
      const graph::Graph g = graph::barabasi_albert(
          std::max<std::uint32_t>(n, 2), edges_per_node, graph_rng);
      tree::SpanningForestOptions opts;
      opts.seeds = {0};
      const tree::SpanningForestResult forest =
          tree::build_spanning_forest(g, opts);
      for (std::uint32_t j = 0; j < n; ++j) {
        parents[j] = forest.tree.parents()[j + 1];
      }
      break;
    }
  }
  return parents;
}

core::RitConfig random_config(rng::Rng& rng) {
  core::RitConfig config;
  config.h = rng.uniform_real(0.2, 0.9);
  config.discount_base = rng.uniform_real(0.1, 0.9);
  config.consensus_log_base = rng.uniform_real(1.3, 5.0);
  config.price_mode = rng.bernoulli(0.8) ? core::PriceMode::kConsensus
                                         : core::PriceMode::kOrderStatistic;
  config.round_budget_policy = rng.bernoulli(0.6)
                                   ? core::RoundBudgetPolicy::kRunToCompletion
                                   : core::RoundBudgetPolicy::kTheoretical;
  config.empty_sample = rng.bernoulli(0.7)
                            ? core::EmptySamplePolicy::kAllAsks
                            : core::EmptySamplePolicy::kNoWinners;
  config.stall_round_limit =
      5 + static_cast<std::uint32_t>(rng.uniform_index(20));
  config.clamp_min_one_round = rng.bernoulli(0.9);
  config.zero_on_failure = rng.bernoulli(0.8);
  if (rng.bernoulli(0.1)) {
    config.k_max_override =
        1 + static_cast<std::uint32_t>(rng.uniform_index(20));
  }
  config.intra_threads = rng.bernoulli(0.15) ? 2u : 1u;
  return config;
}

}  // namespace

FuzzCase random_case(const GenParams& params, rng::Rng& rng) {
  FuzzCase c;
  const auto num_types =
      1 + static_cast<std::uint32_t>(rng.uniform_index(params.max_types));
  c.demand.resize(num_types);
  for (std::uint32_t t = 0; t < num_types; ++t) {
    c.demand[t] =
        static_cast<std::uint32_t>(rng.uniform_index(params.max_demand + 1));
  }
  const auto n = 1 + static_cast<std::uint32_t>(
                         rng.uniform_index(params.max_participants));

  // Clustered values: equal asks exercise the tie-shuffle and the
  // anonymity guarantee; a jittered minority keeps strict orders present.
  const auto num_clusters = 1 + static_cast<std::uint32_t>(rng.uniform_index(6));
  std::vector<double> clusters(num_clusters);
  for (double& v : clusters) v = random_cluster_value(rng);

  c.asks.reserve(n);
  c.costs.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    Ask ask;
    ask.type = TaskType{
        static_cast<std::uint32_t>(rng.uniform_index(num_types))};
    ask.quantity = random_quantity(params, rng);
    ask.value = clusters[rng.uniform_index(num_clusters)];
    if (rng.bernoulli(0.3)) {
      ask.value *= rng.uniform_real(0.8, 1.25);
    }
    c.asks.push_back(ask);
    c.costs.push_back(random_cost_for(ask.value, rng));
  }
  c.parents = random_parents(n, rng);
  c.config = random_config(rng);
  c.mech_seed = rng.next_u64();
  return c;
}

FuzzCase random_case(rng::Rng& rng) { return random_case(GenParams{}, rng); }

FuzzCase apply_mutation(const FuzzCase& base, Mutation mutation,
                        rng::Rng& rng) {
  FuzzCase c = base;
  const auto n = static_cast<std::uint32_t>(c.asks.size());
  const auto num_types = static_cast<std::uint32_t>(c.demand.size());
  c.signature.clear();  // a mutant is a new case, not the old repro
  switch (mutation) {
    case Mutation::kTweakValue: {
      const std::size_t j = rng.uniform_index(n);
      if (n > 1 && rng.bernoulli(0.5)) {
        // Copy another ask's value: manufactures a tie.
        c.asks[j].value = c.asks[rng.uniform_index(n)].value;
      } else {
        c.asks[j].value =
            std::clamp(c.asks[j].value * rng.uniform_real(0.5, 2.0), 1e-6,
                       1e6);
      }
      c.costs[j] = random_cost_for(c.asks[j].value, rng);
      break;
    }
    case Mutation::kTweakQuantity: {
      const std::size_t j = rng.uniform_index(n);
      c.asks[j].quantity = random_quantity(GenParams{}, rng);
      break;
    }
    case Mutation::kTweakDemand: {
      const std::size_t t = rng.uniform_index(num_types);
      c.demand[t] = static_cast<std::uint32_t>(
          rng.uniform_index(GenParams{}.max_demand + 1));
      break;
    }
    case Mutation::kRetype: {
      const std::size_t j = rng.uniform_index(n);
      c.asks[j].type =
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(num_types))};
      break;
    }
    case Mutation::kAddAsk: {
      Ask ask;
      ask.type =
          TaskType{static_cast<std::uint32_t>(rng.uniform_index(num_types))};
      ask.quantity = random_quantity(GenParams{}, rng);
      ask.value = n > 0 && rng.bernoulli(0.5)
                      ? c.asks[rng.uniform_index(n)].value
                      : random_cluster_value(rng);
      c.asks.push_back(ask);
      c.costs.push_back(random_cost_for(ask.value, rng));
      // Any existing node (0..n) is an earlier node for the new node n+1.
      c.parents.push_back(
          static_cast<std::uint32_t>(rng.uniform_index(n + 1)));
      break;
    }
    case Mutation::kDropAsk: {
      if (n <= 1) break;
      const auto r = static_cast<std::uint32_t>(rng.uniform_index(n));
      const std::uint32_t removed_node = r + 1;
      const std::uint32_t grandparent = c.parents[r];
      FuzzCase next = c;
      next.asks.clear();
      next.costs.clear();
      next.parents.clear();
      for (std::uint32_t j = 0; j < n; ++j) {
        if (j == r) continue;
        std::uint32_t p = c.parents[j];
        if (p == removed_node) p = grandparent;
        if (p > removed_node) p -= 1;
        next.asks.push_back(c.asks[j]);
        next.costs.push_back(c.costs[j]);
        next.parents.push_back(p);
      }
      c = next;
      break;
    }
    case Mutation::kReparent: {
      const std::size_t j = rng.uniform_index(n);
      // Nodes 0..j are all earlier than node j+1: no cycle possible.
      c.parents[j] = static_cast<std::uint32_t>(rng.uniform_index(j + 1));
      break;
    }
    case Mutation::kGraftChain: {
      // A same-typed chain under a random node: deep same-type ancestor
      // structure, exactly where discount-depth and same-type-exclusion
      // bugs live.
      const Ask seed_ask = c.asks[rng.uniform_index(n)];
      std::uint32_t attach =
          static_cast<std::uint32_t>(rng.uniform_index(n + 1));
      const auto links = 1 + static_cast<std::uint32_t>(rng.uniform_index(5));
      for (std::uint32_t k = 0; k < links; ++k) {
        Ask ask = seed_ask;
        if (rng.bernoulli(0.4) && num_types > 1) {
          ask.type = TaskType{
              static_cast<std::uint32_t>(rng.uniform_index(num_types))};
        }
        c.asks.push_back(ask);
        c.costs.push_back(random_cost_for(ask.value, rng));
        c.parents.push_back(attach);
        attach = static_cast<std::uint32_t>(c.asks.size());  // new node id
      }
      break;
    }
    case Mutation::kTweakConfig: {
      switch (rng.uniform_index(7)) {
        case 0: c.config.h = rng.uniform_real(0.2, 0.9); break;
        case 1: c.config.discount_base = rng.uniform_real(0.1, 0.9); break;
        case 2:
          c.config.consensus_log_base = rng.uniform_real(1.3, 5.0);
          break;
        case 3:
          c.config.price_mode = c.config.price_mode ==
                                        core::PriceMode::kConsensus
                                    ? core::PriceMode::kOrderStatistic
                                    : core::PriceMode::kConsensus;
          break;
        case 4:
          c.config.round_budget_policy =
              c.config.round_budget_policy ==
                      core::RoundBudgetPolicy::kTheoretical
                  ? core::RoundBudgetPolicy::kRunToCompletion
                  : core::RoundBudgetPolicy::kTheoretical;
          break;
        case 5:
          c.config.empty_sample = c.config.empty_sample ==
                                          core::EmptySamplePolicy::kAllAsks
                                      ? core::EmptySamplePolicy::kNoWinners
                                      : core::EmptySamplePolicy::kAllAsks;
          break;
        default: c.config.zero_on_failure = !c.config.zero_on_failure; break;
      }
      break;
    }
    case Mutation::kReseed:
      c.mech_seed = rng.next_u64();
      break;
  }
  return c;
}

FuzzCase mutate(const FuzzCase& base, rng::Rng& rng) {
  const auto pick =
      static_cast<Mutation>(rng.uniform_index(kNumMutations));
  return apply_mutation(base, pick, rng);
}

}  // namespace rit::testkit
