#include "testkit/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "common/num_io.h"
#include "tree/incentive_tree.h"

namespace rit::testkit {
namespace {

using core::Ask;
using core::CraParams;
using core::EmptySamplePolicy;
using core::Job;
using core::PriceMode;
using core::RitConfig;
using core::RitResult;
using core::RoundBudgetPolicy;

/// Alg. 2, verbatim: scan every user in index order, emit one unit ask per
/// remaining task of the requested type. (Production goes through a
/// per-type CSR that preserves exactly this order.)
struct NaiveAlpha {
  std::vector<double> values;
  std::vector<std::uint32_t> owner;
};

NaiveAlpha naive_extract(TaskType type, std::span<const Ask> asks,
                         const std::vector<std::uint32_t>& remaining) {
  NaiveAlpha alpha;
  for (std::uint32_t j = 0; j < asks.size(); ++j) {
    if (asks[j].type != type) continue;
    for (std::uint32_t k = 0; k < remaining[j]; ++k) {
      alpha.values.push_back(asks[j].value);
      alpha.owner.push_back(j);
    }
  }
  return alpha;
}

/// The consensus grid point by ladder walk: start far below any
/// representable count and climb one exponent at a time while the next
/// rung still fits. Uses the same std::pow(base, z + y) probes as the
/// production guard loops, so the fixpoint — and therefore the floor — is
/// identical; only the search strategy is naive.
std::uint64_t naive_consensus_round_down(std::uint64_t count, double y,
                                         double base) {
  RIT_CHECK(y >= 0.0 && y < 1.0);
  RIT_CHECK(base > 1.0);
  if (count == 0) return 0;
  double z = -2000.0;
  while (std::pow(base, z + 1.0 + y) <= static_cast<double>(count)) {
    z += 1.0;
  }
  return static_cast<std::uint64_t>(std::floor(std::pow(base, z + y)));
}

/// Ascending-value order with ties shuffled. std::stable_sort on the value
/// alone reproduces production's plain sort with an index tie-break (both
/// leave equal values in ascending index order before the shuffle), and
/// the per-run shuffles then consume identical draws.
std::vector<std::uint32_t> naive_sorted_shuffled(
    const std::vector<double>& values, rng::Rng& rng) {
  std::vector<std::uint32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return values[a] < values[b];
                   });
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i + 1;
    while (j < order.size() && values[order[j]] == values[order[i]]) ++j;
    if (j - i > 1) rng.shuffle(std::span<std::uint32_t>(&order[i], j - i));
    i = j;
  }
  return order;
}

struct NaiveRound {
  std::vector<bool> won;
  double clearing_price{0.0};
  std::uint32_t num_winners{0};
};

/// Alg. 1, step by step, drawing from `rng` in production's order.
NaiveRound naive_cra(const std::vector<double>& values,
                     const CraParams& params, rng::Rng& rng) {
  NaiveRound out;
  out.won.assign(values.size(), false);
  if (values.empty() || params.q == 0) return out;
  const std::uint64_t budget =
      static_cast<std::uint64_t>(params.q) + params.m_i;

  if (params.price_mode == PriceMode::kOrderStatistic) {
    if (values.size() < budget + 1) return out;
    const std::vector<std::uint32_t> order =
        naive_sorted_shuffled(values, rng);
    const double price = values[order[budget]];
    const std::vector<std::size_t> sample =
        rng.sample_without_replacement(budget, params.q);
    for (std::size_t i : sample) out.won[order[i]] = true;
    out.num_winners = params.q;
    out.clearing_price = price;
    return out;
  }

  // Step 1: Bernoulli(1/(q+m_i)) sample, s = min sampled value.
  double s = std::numeric_limits<double>::infinity();
  bool sampled_any = false;
  for (double v : values) {
    if (rng.bernoulli(1.0 / static_cast<double>(budget))) {
      sampled_any = true;
      s = std::min(s, v);
    }
  }
  if (!sampled_any) {
    if (params.empty_sample == EmptySamplePolicy::kNoWinners) return out;
    s = *std::max_element(values.begin(), values.end());
  }

  // Step 2: consensus-round the count of asks at or below the threshold.
  const double y = rng.uniform01();
  std::uint64_t raw = 0;
  for (double v : values) {
    if (v <= s) ++raw;
  }
  const std::uint64_t n_s =
      naive_consensus_round_down(raw, y, params.consensus_grid_base);
  if (n_s == 0) return out;

  const std::vector<std::uint32_t> order = naive_sorted_shuffled(values, rng);

  // Step 3: potential winners in ascending-value order.
  std::vector<std::uint32_t> chosen;
  if (n_s <= budget) {
    chosen.assign(order.begin(),
                  order.begin() + static_cast<std::ptrdiff_t>(n_s));
  } else {
    const double keep_p =
        static_cast<double>(budget) / (2.0 * static_cast<double>(n_s));
    for (std::uint64_t i = 0; i < n_s; ++i) {
      if (rng.bernoulli(keep_p)) chosen.push_back(order[i]);
    }
  }

  // Step 4: trim to the budget, repricing at the first excluded ask.
  double price = s;
  if (chosen.size() > budget) {
    price = values[chosen[budget]];
    chosen.resize(budget);
  }

  // Step 5: if more than q survive, q winners uniformly at random.
  if (chosen.size() > params.q) {
    const std::vector<std::size_t> sample =
        rng.sample_without_replacement(chosen.size(), params.q);
    std::vector<std::uint32_t> winners;
    for (std::size_t i : sample) winners.push_back(chosen[i]);
    chosen = winners;
  }

  for (std::uint32_t w : chosen) out.won[w] = true;
  out.num_winners = static_cast<std::uint32_t>(chosen.size());
  out.clearing_price = chosen.empty() ? 0.0 : price;
  return out;
}

}  // namespace

RitResult oracle_run_rit(const FuzzCase& c) {
  const Job job(c.demand);
  std::vector<Ask> asks = c.asks;
  core::validate_asks(job, asks);
  std::vector<std::uint32_t> tree_parents(c.parents.size() + 1, 0);
  for (std::size_t j = 0; j < c.parents.size(); ++j) {
    tree_parents[j + 1] = c.parents[j];
  }
  const tree::IncentiveTree tree(tree_parents);
  RIT_CHECK(tree.num_participants() == asks.size());
  const RitConfig& config = c.config;
  rng::Rng rng(c.mech_seed);

  const auto n = static_cast<std::uint32_t>(asks.size());
  RitResult res;
  res.success = false;
  res.allocation.assign(n, 0);
  res.auction_payment.assign(n, 0.0);
  res.payment.assign(n, 0.0);
  res.k_max = config.k_max_override.value_or(core::observed_k_max(asks));
  const std::uint32_t m = std::max<std::uint32_t>(job.num_demanded_types(), 1);
  res.eta = std::pow(config.h, 1.0 / static_cast<double>(m));
  res.achieved_probability = 1.0;

  std::vector<std::uint32_t> remaining(n);
  for (std::uint32_t j = 0; j < n; ++j) remaining[j] = asks[j].quantity;

  bool all_allocated = true;
  for (std::uint32_t ti = 0; ti < job.num_types(); ++ti) {
    const TaskType type{ti};
    const std::uint32_t m_i = job.demand(type);
    core::TypeAuctionInfo info;
    info.type = type;
    info.demanded = m_i;
    info.budget = core::compute_round_budget(m_i, res.k_max, res.eta, config);
    res.probability_degraded |= info.budget.degraded;

    const bool to_completion =
        config.round_budget_policy == RoundBudgetPolicy::kRunToCompletion;
    std::uint32_t q = m_i;
    std::uint32_t stalled = 0;
    while (q > 0) {
      if (!to_completion && info.rounds_used >= info.budget.max_rounds) break;
      if (to_completion && stalled >= config.stall_round_limit) break;
      const NaiveAlpha alpha = naive_extract(type, asks, remaining);
      if (alpha.values.empty()) break;
      CraParams params;
      params.q = q;
      params.m_i = m_i;
      params.empty_sample = config.empty_sample;
      params.price_mode = config.price_mode;
      params.consensus_grid_base = config.consensus_log_base;
      const NaiveRound round = naive_cra(alpha.values, params, rng);
      for (std::size_t w = 0; w < alpha.values.size(); ++w) {
        if (!round.won[w]) continue;
        const std::uint32_t owner = alpha.owner[w];
        res.allocation[owner] += 1;
        res.auction_payment[owner] += round.clearing_price;
        remaining[owner] -= 1;
        q -= 1;
      }
      stalled = round.num_winners == 0 ? stalled + 1 : 0;
      ++info.rounds_used;
    }
    info.allocated = m_i - q;
    if (info.budget.per_round_bound > 0.0 &&
        info.budget.per_round_bound < 1.0) {
      info.achieved_bound = std::pow(info.budget.per_round_bound,
                                     static_cast<double>(info.rounds_used));
    } else {
      info.achieved_bound = info.rounds_used == 0 ? 1.0 : 0.0;
    }
    res.achieved_probability *= info.achieved_bound;
    if (to_completion && info.rounds_used > info.budget.max_rounds) {
      res.probability_degraded = true;
    }
    if (config.price_mode == PriceMode::kOrderStatistic) {
      res.probability_degraded = true;
    }
    if (q > 0) all_allocated = false;
    res.type_info.push_back(info);
  }

  res.success = all_allocated;
  if (!res.success) {
    if (config.zero_on_failure) {
      std::fill(res.allocation.begin(), res.allocation.end(), 0u);
      std::fill(res.auction_payment.begin(), res.auction_payment.end(), 0.0);
      std::fill(res.payment.begin(), res.payment.end(), 0.0);
    } else {
      res.payment = res.auction_payment;
    }
    return res;
  }

  // Payment determination, the O(Σdepth) way: every participant receives
  // its auction payment plus the depth-discounted auction payments of its
  // different-type strict descendants (Alg. 3 line 24).
  res.payment = res.auction_payment;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t node = tree::node_of_participant(i);
    for (std::uint32_t d : tree.descendants(node)) {
      const std::uint32_t j = tree::participant_of_node(d);
      if (asks[j].type == asks[i].type) continue;
      res.payment[i] += std::pow(config.discount_base,
                                 static_cast<double>(tree.depth(d))) *
                        res.auction_payment[j];
    }
  }
  return res;
}

namespace {

bool close(double a, double b, double rel_tol) {
  if (a == b) return true;
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= rel_tol * scale;
}

OracleDiff mismatch(const std::string& field, const std::string& detail) {
  OracleDiff d;
  d.match = false;
  d.field = field;
  d.detail = detail;
  return d;
}

std::string at_index(std::size_t i, double prod, double oracle) {
  return "index " + format_u64(i) + ": production " +
         format_double_g17(prod) + " vs oracle " + format_double_g17(oracle);
}

}  // namespace

OracleDiff diff_results(const core::RitResult& prod,
                        const core::RitResult& oracle,
                        double payment_tolerance) {
  if (prod.success != oracle.success) {
    return mismatch("success", prod.success ? "production succeeded, oracle "
                                              "failed"
                                            : "oracle succeeded, production "
                                              "failed");
  }
  if (prod.k_max != oracle.k_max) {
    return mismatch("k_max", "production " + format_u64(prod.k_max) +
                                 " vs oracle " + format_u64(oracle.k_max));
  }
  if (!close(prod.eta, oracle.eta, 1e-12)) {
    return mismatch("eta", at_index(0, prod.eta, oracle.eta));
  }
  if (prod.allocation.size() != oracle.allocation.size()) {
    return mismatch("allocation", "size mismatch");
  }
  for (std::size_t i = 0; i < prod.allocation.size(); ++i) {
    if (prod.allocation[i] != oracle.allocation[i]) {
      return mismatch("allocation",
                      "index " + format_u64(i) + ": production " +
                          format_u64(prod.allocation[i]) + " vs oracle " +
                          format_u64(oracle.allocation[i]));
    }
  }
  for (std::size_t i = 0; i < prod.auction_payment.size(); ++i) {
    if (!close(prod.auction_payment[i], oracle.auction_payment[i], 1e-12)) {
      return mismatch("auction_payment",
                      at_index(i, prod.auction_payment[i],
                               oracle.auction_payment[i]));
    }
  }
  if (prod.type_info.size() != oracle.type_info.size()) {
    return mismatch("type_info", "size mismatch");
  }
  for (std::size_t t = 0; t < prod.type_info.size(); ++t) {
    const core::TypeAuctionInfo& p = prod.type_info[t];
    const core::TypeAuctionInfo& o = oracle.type_info[t];
    if (p.demanded != o.demanded || p.allocated != o.allocated ||
        p.rounds_used != o.rounds_used) {
      return mismatch(
          "type_info",
          "type " + format_u64(t) + ": production (demanded " +
              format_u64(p.demanded) + ", allocated " +
              format_u64(p.allocated) + ", rounds " +
              format_u64(p.rounds_used) + ") vs oracle (demanded " +
              format_u64(o.demanded) + ", allocated " +
              format_u64(o.allocated) + ", rounds " +
              format_u64(o.rounds_used) + ")");
    }
  }
  if (prod.probability_degraded != oracle.probability_degraded) {
    return mismatch("probability_degraded", "flag mismatch");
  }
  if (!close(prod.achieved_probability, oracle.achieved_probability, 1e-12)) {
    return mismatch("achieved_probability",
                    at_index(0, prod.achieved_probability,
                             oracle.achieved_probability));
  }
  for (std::size_t i = 0; i < prod.payment.size(); ++i) {
    if (!close(prod.payment[i], oracle.payment[i], payment_tolerance)) {
      return mismatch("payment",
                      at_index(i, prod.payment[i], oracle.payment[i]));
    }
  }
  return {};
}

}  // namespace rit::testkit
