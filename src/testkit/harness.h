// The per-case check the fuzz loop runs: production vs oracle vs paper
// invariants, with every failure mapped to a stable signature class.
//
// Signature classes (stable strings — they name corpus repro files and
// drive shrinking, so they must not depend on memory addresses, wall
// clock, or platform):
//
//   ""                         the case passed
//   "prod-exception"           production threw, oracle did not
//   "oracle-exception"         oracle threw, production did not
//   "oracle-mismatch:<field>"  field-by-field differential mismatch
//   "invariant:<name>"         a pathwise paper invariant failed
//
// A case that BOTH implementations reject (CheckFailure on malformed
// input) passes: consistent rejection is the contract. "crash" is not
// produced here — the fuzz runner's supervisor assigns it when the check
// dies in its sandboxed process instead of returning.
#pragma once

#include <string>

#include "testkit/fuzz_case.h"

namespace rit::testkit {

struct CaseOutcome {
  bool ok{true};
  /// Signature class ("" when ok). See the taxonomy above.
  std::string signature;
  /// Human-facing context for reports; not part of the class identity.
  std::string details;
};

/// Runs production and oracle on `c` (each with a fresh
/// rng::Rng(c.mech_seed)), diffs them, and checks the paper invariants on
/// the production result.
CaseOutcome check_case(const FuzzCase& c);

}  // namespace rit::testkit
