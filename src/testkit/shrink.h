// Greedy structured shrinking of failing fuzz cases.
//
// A raw failing case from the mutation loop has hundreds of participants
// and an arbitrary config; the shrinker minimizes it while preserving the
// failure *signature class* (e.g. "oracle-mismatch:payment"), so the
// committed repro demonstrates the same defect with as little scenario as
// possible. Passes are greedy and run in a fixed order until a fixpoint
// or the check budget is exhausted:
//
//   1. participant chunk removal (delta-debugging over the tree, children
//      of a removed node re-parented to its nearest surviving ancestor)
//   2. demand reduction (each type toward 0)
//   3. quantity reduction (each ask toward 1)
//   4. value canonicalization (each ask toward 1.0 — collapses clusters)
//   5. tree simplification (hoist nodes toward the root, full flatten)
//   6. config canonicalization (defaults knob by knob)
//
// The shrinker itself draws no randomness: given the same case, signature
// and check function it produces the same minimized case, which is what
// lets the golden repro test pin its output byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "testkit/fuzz_case.h"

namespace rit::testkit {

/// Evaluates a candidate case and returns its failure signature class, or
/// "" when the case passes. Shrinking only accepts candidates whose class
/// matches the original failure's.
using CaseCheck = std::function<std::string(const FuzzCase&)>;

struct ShrinkResult {
  FuzzCase best;
  /// check() invocations spent (accepted + rejected candidates).
  std::uint32_t checks_used{0};
};

/// Minimizes `failing` (whose check() class is `signature`) under a hard
/// budget of `max_checks` candidate evaluations.
ShrinkResult shrink(const FuzzCase& failing, const std::string& signature,
                    const CaseCheck& check, std::uint32_t max_checks);

/// Removes every participant j with keep[j] == 0, re-parenting surviving
/// children to their nearest surviving ancestor. Exposed for tests.
FuzzCase remove_participants(const FuzzCase& c,
                             const std::vector<char>& keep);

}  // namespace rit::testkit
