// Seeded scenario generation and the mutation grammar of the fuzzer.
//
// random_case() samples a complete FuzzCase — job demand vector, clustered
// ask values (ties are where tie-break bugs hide), per-participant costs,
// a tree drawn from a shape family that deliberately includes the
// adversarial extremes (deep chains, wide stars, combs, spanning forests
// of a scale-free social graph), and a wildly varied RitConfig. mutate()
// applies one structured edit from the grammar below, repairing the case
// so it stays well-formed (parents always reference earlier nodes, values
// stay positive and finite, quantities stay within kMaxAskQuantity).
//
// Everything draws from the passed rng::Rng only: the same seed produces
// the same case byte for byte, which is what makes the corpus replayable.
#pragma once

#include "rng/rng.h"
#include "testkit/fuzz_case.h"

namespace rit::testkit {

struct GenParams {
  std::uint32_t max_types{6};
  std::uint32_t max_participants{220};
  std::uint32_t max_demand{12};
  std::uint32_t max_quantity{8};
};

/// Samples a fresh well-formed case.
FuzzCase random_case(const GenParams& params, rng::Rng& rng);
FuzzCase random_case(rng::Rng& rng);

/// The mutation grammar. Every mutation preserves well-formedness.
enum class Mutation : std::uint32_t {
  kTweakValue,     // re-price one ask (often onto another ask's value: ties)
  kTweakQuantity,  // re-roll one ask's quantity
  kTweakDemand,    // re-roll one type's demand
  kRetype,         // move one ask to another task type
  kAddAsk,         // append a participant under a random existing node
  kDropAsk,        // remove a participant, re-parenting its children
  kReparent,       // move one subtree to a different (earlier) node
  kGraftChain,     // graft a same-typed chain under a random node
  kTweakConfig,    // re-roll one mechanism config knob
  kReseed,         // new mechanism seed, same scenario
};
inline constexpr std::uint32_t kNumMutations = 10;

/// Applies one specific mutation.
FuzzCase apply_mutation(const FuzzCase& base, Mutation mutation,
                        rng::Rng& rng);

/// Applies one uniformly chosen mutation.
FuzzCase mutate(const FuzzCase& base, rng::Rng& rng);

}  // namespace rit::testkit
