// Pathwise paper invariants as reusable checkers.
//
// Every property here must hold on EVERY run of the mechanism, not just in
// expectation, so a single fuzz case (or any test/bench that has a
// RitResult in hand) can assert them directly:
//
//   allocation-bounds     x_j <= k_j, and per-type totals == m_i on success
//   fail-closed           !success + zero_on_failure => everything zeroed
//   finiteness            every payment/allocation field is finite
//   payment-floor         p_j >= p_j^A >= 0 (tree shares are non-negative)
//   individual-rationality U_j = p_j - x_j c_j >= 0 for truthful
//                         participants (c_j <= a_j), Thm 1
//   share-algebra         the solicitation premium equals the sum of tree
//                         shares and respects the per-descendant geometric
//                         bound (depth-1 distinct-type ancestors at
//                         discount base^depth), Sec. 7-C
//   probability-floor     achieved_probability in [0,1], and >= H under
//                         kTheoretical with healthy (non-degraded) budgets
#pragma once

#include <string>
#include <vector>

#include "core/rit.h"
#include "testkit/fuzz_case.h"

namespace rit::testkit {

/// One violated invariant. `name` is the stable identifier used in
/// failure signatures; `detail` is human-facing context.
struct InvariantViolation {
  std::string name;
  std::string detail;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;
  bool ok() const { return violations.empty(); }
};

/// Checks every pathwise invariant of `result` against the case that
/// produced it. Never throws on well-formed inputs; a malformed pairing
/// (size mismatches) is itself reported as a violation.
InvariantReport check_invariants(const FuzzCase& c,
                                 const core::RitResult& result);

}  // namespace rit::testkit
