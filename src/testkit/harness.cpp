#include "testkit/harness.h"

#include <exception>
#include <optional>

#include "core/rit.h"
#include "testkit/invariants.h"
#include "testkit/oracle.h"
#include "tree/incentive_tree.h"

namespace rit::testkit {
namespace {

struct RunAttempt {
  std::optional<core::RitResult> result;
  std::string error;
};

RunAttempt run_production(const FuzzCase& c) {
  RunAttempt attempt;
  try {
    const core::Job job(c.demand);
    std::vector<std::uint32_t> tree_parents(c.parents.size() + 1, 0);
    for (std::size_t j = 0; j < c.parents.size(); ++j) {
      tree_parents[j + 1] = c.parents[j];
    }
    const tree::IncentiveTree tree(tree_parents);
    rng::Rng rng(c.mech_seed);
    attempt.result = core::run_rit(job, c.asks, tree, c.config, rng);
  } catch (const std::exception& e) {
    attempt.error = e.what();
  }
  return attempt;
}

RunAttempt run_oracle(const FuzzCase& c) {
  RunAttempt attempt;
  try {
    attempt.result = oracle_run_rit(c);
  } catch (const std::exception& e) {
    attempt.error = e.what();
  }
  return attempt;
}

}  // namespace

CaseOutcome check_case(const FuzzCase& c) {
  CaseOutcome outcome;
  const RunAttempt prod = run_production(c);
  const RunAttempt oracle = run_oracle(c);

  // Consistent rejection of a malformed case is the contract; divergent
  // exception behavior is a real differential finding.
  if (!prod.result && !oracle.result) return outcome;
  if (!prod.result) {
    outcome.ok = false;
    outcome.signature = "prod-exception";
    outcome.details = prod.error;
    return outcome;
  }
  if (!oracle.result) {
    outcome.ok = false;
    outcome.signature = "oracle-exception";
    outcome.details = oracle.error;
    return outcome;
  }

  const OracleDiff diff = diff_results(*prod.result, *oracle.result);
  if (!diff.match) {
    outcome.ok = false;
    outcome.signature = "oracle-mismatch:" + diff.field;
    outcome.details = diff.detail;
    return outcome;
  }

  const InvariantReport report = check_invariants(c, *prod.result);
  if (!report.ok()) {
    outcome.ok = false;
    outcome.signature = "invariant:" + report.violations.front().name;
    outcome.details = report.violations.front().detail;
    return outcome;
  }
  return outcome;
}

}  // namespace rit::testkit
