#include "testkit/fuzz_case.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/num_io.h"

namespace rit::testkit {
namespace {

constexpr const char* kMagic = "ritcs-fuzzcase v1";

const char* price_name(core::PriceMode m) {
  return m == core::PriceMode::kConsensus ? "consensus" : "order";
}
const char* policy_name(core::RoundBudgetPolicy p) {
  return p == core::RoundBudgetPolicy::kTheoretical ? "theoretical"
                                                    : "completion";
}
const char* empty_name(core::EmptySamplePolicy p) {
  return p == core::EmptySamplePolicy::kAllAsks ? "all" : "none";
}

/// Everything after the checksum line except the signature line. The
/// checksum and the case fingerprint both hash exactly this text, so the
/// identity of a case is independent of shrink/repro metadata.
std::string payload_text(const FuzzCase& c) {
  std::ostringstream out;
  out << "seed " << format_u64(c.mech_seed) << "\n";
  out << "demand " << format_u64(c.demand.size());
  for (std::uint32_t d : c.demand) out << " " << format_u64(d);
  out << "\n";
  out << "asks " << format_u64(c.asks.size()) << "\n";
  for (std::size_t j = 0; j < c.asks.size(); ++j) {
    out << "ask " << format_u64(c.asks[j].type.value) << " "
        << format_u64(c.asks[j].quantity) << " "
        << format_hex_double(c.asks[j].value) << " "
        << format_hex_double(c.costs[j]) << " " << format_u64(c.parents[j])
        << "\n";
  }
  out << "h " << format_hex_double(c.config.h) << "\n";
  out << "discount " << format_hex_double(c.config.discount_base) << "\n";
  out << "gridbase " << format_hex_double(c.config.consensus_log_base)
      << "\n";
  out << "price " << price_name(c.config.price_mode) << "\n";
  out << "policy " << policy_name(c.config.round_budget_policy) << "\n";
  out << "empty " << empty_name(c.config.empty_sample) << "\n";
  out << "stall " << format_u64(c.config.stall_round_limit) << "\n";
  out << "clamp " << format_u64(c.config.clamp_min_one_round ? 1 : 0)
      << "\n";
  out << "zero " << format_u64(c.config.zero_on_failure ? 1 : 0) << "\n";
  out << "kmax "
      << (c.config.k_max_override
              ? format_u64(*c.config.k_max_override)
              : std::string("none"))
      << "\n";
  out << "threads " << format_u64(c.config.intra_threads) << "\n";
  return out.str();
}

/// Splits `line` on single spaces into fields.
std::vector<std::string> fields_of(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return fields;
}

}  // namespace

std::string serialize_case(const FuzzCase& c) {
  RIT_CHECK(c.costs.size() == c.asks.size());
  RIT_CHECK(c.parents.size() == c.asks.size());
  const std::string payload = payload_text(c);
  std::ostringstream out;
  out << kMagic << "\n";
  out << "checksum " << format_u64(fnv1a64(payload)) << "\n";
  out << payload;
  if (!c.signature.empty()) out << "sig " << c.signature << "\n";
  return out.str();
}

std::uint64_t case_hash(const FuzzCase& c) {
  return fnv1a64(payload_text(c));
}

std::optional<FuzzCase> parse_case(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;
  auto checksum_fields = fields_of(line);
  if (checksum_fields.size() != 2 || checksum_fields[0] != "checksum") {
    return std::nullopt;
  }
  const auto stored_checksum = parse_u64(checksum_fields[1]);
  if (!stored_checksum) return std::nullopt;

  FuzzCase c;
  std::string payload;
  std::uint64_t asks_expected = 0;
  bool saw_asks_header = false;
  while (std::getline(in, line)) {
    const auto f = fields_of(line);
    if (f.empty() || f[0].empty()) return std::nullopt;
    const std::string& key = f[0];
    if (key == "sig") {
      c.signature = line.size() > 4 ? line.substr(4) : std::string{};
      continue;  // metadata: outside the checksummed payload
    }
    payload += line;
    payload += "\n";
    if (key == "seed" && f.size() == 2) {
      const auto v = parse_u64(f[1]);
      if (!v) return std::nullopt;
      c.mech_seed = *v;
    } else if (key == "demand" && f.size() >= 2) {
      const auto count = parse_u64(f[1]);
      if (!count || f.size() != 2 + *count) return std::nullopt;
      for (std::size_t i = 0; i < *count; ++i) {
        const auto d = parse_u32(f[2 + i]);
        if (!d) return std::nullopt;
        c.demand.push_back(*d);
      }
    } else if (key == "asks" && f.size() == 2) {
      const auto n = parse_u64(f[1]);
      if (!n) return std::nullopt;
      asks_expected = *n;
      saw_asks_header = true;
    } else if (key == "ask" && f.size() == 6) {
      const auto type = parse_u32(f[1]);
      const auto quantity = parse_u32(f[2]);
      const auto value = parse_double(f[3]);
      const auto cost = parse_double(f[4]);
      const auto parent = parse_u32(f[5]);
      if (!type || !quantity || !value || !cost || !parent.has_value()) {
        return std::nullopt;
      }
      c.asks.push_back(core::Ask{TaskType{*type}, *quantity, *value});
      c.costs.push_back(*cost);
      c.parents.push_back(*parent);
    } else if (key == "h" && f.size() == 2) {
      const auto v = parse_double(f[1]);
      if (!v) return std::nullopt;
      c.config.h = *v;
    } else if (key == "discount" && f.size() == 2) {
      const auto v = parse_double(f[1]);
      if (!v) return std::nullopt;
      c.config.discount_base = *v;
    } else if (key == "gridbase" && f.size() == 2) {
      const auto v = parse_double(f[1]);
      if (!v) return std::nullopt;
      c.config.consensus_log_base = *v;
    } else if (key == "price" && f.size() == 2) {
      if (f[1] == "consensus") {
        c.config.price_mode = core::PriceMode::kConsensus;
      } else if (f[1] == "order") {
        c.config.price_mode = core::PriceMode::kOrderStatistic;
      } else {
        return std::nullopt;
      }
    } else if (key == "policy" && f.size() == 2) {
      if (f[1] == "theoretical") {
        c.config.round_budget_policy = core::RoundBudgetPolicy::kTheoretical;
      } else if (f[1] == "completion") {
        c.config.round_budget_policy =
            core::RoundBudgetPolicy::kRunToCompletion;
      } else {
        return std::nullopt;
      }
    } else if (key == "empty" && f.size() == 2) {
      if (f[1] == "all") {
        c.config.empty_sample = core::EmptySamplePolicy::kAllAsks;
      } else if (f[1] == "none") {
        c.config.empty_sample = core::EmptySamplePolicy::kNoWinners;
      } else {
        return std::nullopt;
      }
    } else if (key == "stall" && f.size() == 2) {
      const auto v = parse_u32(f[1]);
      if (!v) return std::nullopt;
      c.config.stall_round_limit = *v;
    } else if (key == "clamp" && f.size() == 2) {
      const auto v = parse_u64(f[1]);
      if (!v || *v > 1) return std::nullopt;
      c.config.clamp_min_one_round = *v == 1;
    } else if (key == "zero" && f.size() == 2) {
      const auto v = parse_u64(f[1]);
      if (!v || *v > 1) return std::nullopt;
      c.config.zero_on_failure = *v == 1;
    } else if (key == "kmax" && f.size() == 2) {
      if (f[1] == "none") {
        c.config.k_max_override.reset();
      } else {
        const auto v = parse_u32(f[1]);
        if (!v) return std::nullopt;
        c.config.k_max_override = *v;
      }
    } else if (key == "threads" && f.size() == 2) {
      const auto v = parse_u32(f[1]);
      if (!v) return std::nullopt;
      c.config.intra_threads = *v;
    } else {
      return std::nullopt;
    }
  }
  if (!saw_asks_header || c.asks.size() != asks_expected) return std::nullopt;
  if (fnv1a64(payload) != *stored_checksum) return std::nullopt;
  return c;
}

std::optional<FuzzCase> load_case_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_case(ss.str());
}

void write_case_file(const std::string& path, const FuzzCase& c) {
  write_file_atomic(path, serialize_case(c));
}

}  // namespace rit::testkit
