// The differential-testing oracle: a deliberately naive re-implementation
// of the mechanism, written for obviousness rather than speed, compared
// field-by-field against the optimized production path.
//
// The oracle mirrors the paper's pseudocode directly: Extract (Alg. 2) is
// a per-user scan with push_backs, the CRA round (Alg. 1) re-sorts with
// std::stable_sort and finds the consensus grid point by walking the
// exponent ladder one step at a time, and the payment determination phase
// is the O(Σdepth) ancestor recursion over tree.descendants(). None of the
// production shortcuts (CSR type index, prefix-sum subtree queries, depth
// memos, workspace reuse) appear here — which is the point: a bug in any
// of them shows up as a field mismatch.
//
// The one thing the oracle shares with production is the RNG draw
// *sequence*: both consume the same rng::Rng stream in the same order
// (that order is part of the mechanism's determinism contract), so their
// outputs are comparable draw for draw. The round-budget formula
// (compute_round_budget) is also shared — it is closed-form double
// arithmetic with no algorithmic shortcuts to cross-check, and sharing it
// keeps the comparison exact.
#pragma once

#include <string>

#include "core/rit.h"
#include "testkit/fuzz_case.h"

namespace rit::testkit {

/// First field where production and oracle disagree (match == true means
/// none). `field` is a stable identifier ("allocation", "payment", ...)
/// used in failure signatures; `detail` is human-facing context.
struct OracleDiff {
  bool match{true};
  std::string field;
  std::string detail;
};

/// Runs the naive reference mechanism on `c` with a fresh
/// rng::Rng(c.mech_seed). Throws CheckFailure on malformed cases, exactly
/// like the production path.
core::RitResult oracle_run_rit(const FuzzCase& c);

/// Compares production vs oracle results. Counters, allocations and flags
/// are compared exactly; auction payments and derived probabilities with a
/// 1e-12 relative tolerance (same-order sums of identical terms); final
/// tree payments with `payment_tolerance` (the oracle's ancestor walk sums
/// contributions in a different order than the prefix-sum pass).
OracleDiff diff_results(const core::RitResult& prod,
                        const core::RitResult& oracle,
                        double payment_tolerance = 1e-9);

}  // namespace rit::testkit
