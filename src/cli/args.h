// Tiny --key=value argument parser for benches and examples.
//
// Usage:
//   cli::Args args(argc, argv);
//   const auto trials = args.get_u64("trials", 10);
//   args.finish();  // throws on unrecognized flags (catches typos)
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace rit::cli {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Typed getters; each records the key as recognized. A flag given
  /// without "=value" (e.g. --full) reads as boolean true.
  std::uint64_t get_u64(const std::string& key, std::uint64_t def);
  double get_double(const std::string& key, double def);
  bool get_bool(const std::string& key, bool def);
  std::string get_string(const std::string& key, const std::string& def);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Throws CheckFailure if any provided flag was never queried.
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> recognized_;
};

}  // namespace rit::cli
