// CSV writer: every bench also dumps its series as CSV so the figures can
// be re-plotted with any external tool.
//
// Rows are buffered in memory and the whole file is committed through
// rit::write_file_atomic on close(), so a crash mid-sweep never leaves a
// half-written CSV behind — readers either see the previous complete file
// or the new complete one.
#pragma once

#include <string>
#include <vector>

namespace rit::cli {

/// RFC 4180 quoting for one CSV cell: returns `cell` unchanged unless it
/// contains a comma, double quote, CR, or LF, in which case the cell is
/// wrapped in double quotes with embedded quotes doubled. Every CSV cell
/// in the tree routes through this (CsvWriter uses it internally) so that
/// free-form text — fault-ledger reasons carrying exception messages, for
/// example — can never corrupt the row format.
std::string csv_quote(const std::string& cell);

class CsvWriter {
 public:
  /// Remembers `path` and buffers the header row. The file itself is only
  /// written by close() (or the destructor). Throws on an empty header.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Commits the buffered rows atomically (write temp, fsync, rename).
  /// Best-effort, never throws: an explicit close() beforehand is the way
  /// to observe failures.
  ~CsvWriter();

  void add_row(const std::vector<std::string>& cells);
  void add_numeric_row(const std::vector<double>& cells, int precision = 6);

  /// Atomically writes the buffered content to path(). Throws CheckFailure
  /// on I/O failure. Idempotent: later calls after a success are no-ops,
  /// and rows must not be added after a successful close.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string buffer_;
  std::size_t columns_;
  bool closed_ = false;
};

}  // namespace rit::cli
