// CSV writer: every bench also dumps its series as CSV so the figures can
// be re-plotted with any external tool.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace rit::cli {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);
  void add_numeric_row(const std::vector<double>& cells, int precision = 6);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace rit::cli
