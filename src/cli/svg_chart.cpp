#include "cli/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/format_util.h"

namespace rit::cli {

namespace {
constexpr const char* kPalette[] = {"#1f78b4", "#e31a1c", "#33a02c",
                                    "#ff7f00", "#6a3d9a", "#b15928",
                                    "#a6cee3", "#fb9a99"};
constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 36;
constexpr int kMarginBottom = 48;

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(ch);
    }
  }
  return out;
}

std::string tick_label(double v) {
  // Compact labels: large magnitudes in k/M, small with trailing zeros cut.
  const double a = std::abs(v);
  if (a >= 1e6) return format_double(v / 1e6, 1) + "M";
  if (a >= 1e4) return format_double(v / 1e3, 0) + "k";
  std::string s = format_double(v, a < 1.0 && a > 0.0 ? 3 : 2);
  while (!s.empty() && s.find('.') != std::string::npos &&
         (s.back() == '0' || s.back() == '.')) {
    const bool dot = s.back() == '.';
    s.pop_back();
    if (dot) break;
  }
  return s.empty() ? "0" : s;
}
}  // namespace

double nice_tick_step(double lo, double hi, int target_ticks) {
  RIT_CHECK(hi >= lo);
  RIT_CHECK(target_ticks >= 2);
  const double span = std::max(hi - lo, 1e-12);
  const double raw = span / target_ticks;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.0) {
    step = 1.0;
  } else if (norm <= 2.0) {
    step = 2.0;
  } else if (norm <= 5.0) {
    step = 5.0;
  }
  return step * mag;
}

std::string render_line_chart(const std::vector<Series>& series,
                              const ChartOptions& options) {
  RIT_CHECK_MSG(!series.empty(), "a chart needs at least one series");
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -std::numeric_limits<double>::infinity();
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -std::numeric_limits<double>::infinity();
  std::size_t total_points = 0;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      RIT_CHECK_MSG(std::isfinite(x) && std::isfinite(y),
                    "chart points must be finite");
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      y_lo = std::min(y_lo, y);
      y_hi = std::max(y_hi, y);
      ++total_points;
    }
  }
  RIT_CHECK_MSG(total_points > 0, "a chart needs at least one point");
  if (options.include_zero_y) y_lo = std::min(y_lo, 0.0);
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  // Pad y a little so lines do not hug the frame.
  const double y_pad = 0.05 * (y_hi - y_lo);
  y_hi += y_pad;
  if (!options.include_zero_y || y_lo < 0.0) y_lo -= y_pad;

  const double plot_w =
      static_cast<double>(options.width - kMarginLeft - kMarginRight);
  const double plot_h =
      static_cast<double>(options.height - kMarginTop - kMarginBottom);
  RIT_CHECK(plot_w > 10 && plot_h > 10);
  auto sx = [&](double x) {
    return kMarginLeft + (x - x_lo) / (x_hi - x_lo) * plot_w;
  };
  auto sy = [&](double y) {
    return kMarginTop + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h;
  };

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << options.width / 2 << "\" y=\"20\" text-anchor="
      << "\"middle\" font-family=\"sans-serif\" font-size=\"14\" "
         "font-weight=\"bold\">"
      << escape_xml(options.title) << "</text>\n";

  // Gridlines + ticks.
  const double ystep = nice_tick_step(y_lo, y_hi, 6);
  for (double y = std::ceil(y_lo / ystep) * ystep; y <= y_hi + 1e-9;
       y += ystep) {
    const double py = sy(y);
    svg << "<line x1=\"" << kMarginLeft << "\" y1=\"" << py << "\" x2=\""
        << options.width - kMarginRight << "\" y2=\"" << py
        << "\" stroke=\"#dddddd\" stroke-width=\"1\"/>\n";
    svg << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << py + 4
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
           "font-size=\"11\">"
        << tick_label(y) << "</text>\n";
  }
  const double xstep = nice_tick_step(x_lo, x_hi, 7);
  for (double x = std::ceil(x_lo / xstep) * xstep; x <= x_hi + 1e-9;
       x += xstep) {
    const double px = sx(x);
    svg << "<line x1=\"" << px << "\" y1=\"" << kMarginTop << "\" x2=\"" << px
        << "\" y2=\"" << kMarginTop + plot_h
        << "\" stroke=\"#eeeeee\" stroke-width=\"1\"/>\n";
    svg << "<text x=\"" << px << "\" y=\"" << kMarginTop + plot_h + 16
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"11\">"
        << tick_label(x) << "</text>\n";
  }
  // Frame + axis labels.
  svg << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop
      << "\" width=\"" << plot_w << "\" height=\"" << plot_h
      << "\" fill=\"none\" stroke=\"#444444\"/>\n";
  svg << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\""
      << options.height - 10
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\">"
      << escape_xml(options.x_label) << "</text>\n";
  svg << "<text x=\"14\" y=\"" << kMarginTop + plot_h / 2
      << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
         "font-size=\"12\" transform=\"rotate(-90 14 "
      << kMarginTop + plot_h / 2 << ")\">" << escape_xml(options.y_label)
      << "</text>\n";

  // Series.
  for (std::size_t i = 0; i < series.size(); ++i) {
    const char* color = kPalette[i % std::size(kPalette)];
    std::vector<std::pair<double, double>> pts = series[i].points;
    std::sort(pts.begin(), pts.end());
    svg << "<polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"2\" points=\"";
    for (const auto& [x, y] : pts) {
      svg << format_double(sx(x), 2) << ',' << format_double(sy(y), 2) << ' ';
    }
    svg << "\"/>\n";
    if (options.markers) {
      for (const auto& [x, y] : pts) {
        svg << "<circle cx=\"" << format_double(sx(x), 2) << "\" cy=\""
            << format_double(sy(y), 2) << "\" r=\"3\" fill=\"" << color
            << "\"/>\n";
      }
    }
    // Legend entry.
    const double lx = kMarginLeft + 10;
    const double ly = kMarginTop + 14 + 16.0 * static_cast<double>(i);
    svg << "<rect x=\"" << lx << "\" y=\"" << ly - 9
        << "\" width=\"12\" height=\"4\" fill=\"" << color << "\"/>\n";
    svg << "<text x=\"" << lx + 18 << "\" y=\"" << ly
        << "\" font-family=\"sans-serif\" font-size=\"11\">"
        << escape_xml(series[i].label) << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_line_chart(const std::string& path,
                      const std::vector<Series>& series,
                      const ChartOptions& options) {
  rit::write_file_atomic(path, render_line_chart(series, options));
}

}  // namespace rit::cli
