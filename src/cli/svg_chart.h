// Self-contained SVG line charts — no plotting ecosystem required.
//
// C++ has no matplotlib; rather than asking users to re-plot CSVs
// elsewhere, every figure bench renders its series directly to an .svg
// that any browser opens. Pure string generation (deterministic, easily
// unit-tested), fixed color palette, auto-scaled axes with "nice" ticks,
// legend, and optional per-point markers.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace rit::cli {

struct Series {
  std::string label;
  std::vector<std::pair<double, double>> points;  // (x, y)
};

struct ChartOptions {
  std::string title;
  std::string x_label;
  std::string y_label;
  int width = 720;
  int height = 440;
  /// Force the y axis to include zero (fair visual comparisons).
  bool include_zero_y = true;
  /// Draw circles at data points.
  bool markers = true;
};

/// Renders a multi-series line chart as a standalone SVG document.
/// Requires at least one series with at least one point; series are
/// colored in declaration order from a fixed 8-color palette.
std::string render_line_chart(const std::vector<Series>& series,
                              const ChartOptions& options);

/// Convenience: render and write to `path` (parent directory must exist).
void write_line_chart(const std::string& path,
                      const std::vector<Series>& series,
                      const ChartOptions& options);

/// Chooses a "nice" tick step (1/2/5 x 10^k) so that [lo, hi] gets roughly
/// `target_ticks` ticks. Exposed for testing.
double nice_tick_step(double lo, double hi, int target_ticks);

}  // namespace rit::cli
