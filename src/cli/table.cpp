#include "cli/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/format_util.h"

namespace rit::cli {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RIT_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  RIT_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, table has "
                           << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(format_double(c, precision));
  add_row(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << pad_left(row[c], widths[c]);
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print(std::ostream& out) const { out << render(); }

}  // namespace rit::cli
