// Aligned plain-text table printer: the bench binaries print the same
// rows/series the paper's figures plot, in a form that is pleasant to read
// and trivially machine-parsable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rit::cli {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows: doubles formatted with `precision`.
  void add_numeric_row(const std::vector<double>& cells, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with column alignment and a header underline.
  std::string render() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rit::cli
