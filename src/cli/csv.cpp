#include "cli/csv.h"

#include "common/check.h"
#include "common/format_util.h"

namespace rit::cli {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  RIT_CHECK_MSG(out_.good(), "cannot open CSV file for writing: " << path);
  RIT_CHECK(!header.empty());
  add_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  RIT_CHECK_MSG(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, header has "
                               << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(format_double(c, precision));
  add_row(row);
}

}  // namespace rit::cli
