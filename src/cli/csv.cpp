#include "cli/csv.h"

#include <exception>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/format_util.h"
#include "common/log.h"

namespace rit::cli {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), columns_(header.size()) {
  RIT_CHECK(!header.empty());
  add_row(header);
}

CsvWriter::~CsvWriter() {
  try {
    close();
  } catch (const std::exception& e) {
    // A destructor must not throw; surface the failure instead of
    // swallowing it silently. Callers that care should close() explicitly.
    RIT_LOG_ERROR << "CSV write to '" << path_ << "' failed: " << e.what();
  }
}

std::string csv_quote(const std::string& cell) {
  // A lone '\r' needs quoting too: RFC 4180 row separators are CRLF, so an
  // unquoted carriage return splits the row for any compliant reader.
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  RIT_CHECK_MSG(!closed_, "CSV file already closed: " << path_);
  RIT_CHECK_MSG(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, header has "
                               << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) buffer_ += ',';
    buffer_ += csv_quote(cells[i]);
  }
  buffer_ += '\n';
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(format_double(c, precision));
  add_row(row);
}

void CsvWriter::close() {
  if (closed_) return;
  rit::write_file_atomic(path_, buffer_);
  closed_ = true;
}

}  // namespace rit::cli
