#include "cli/args.h"

#include "common/check.h"
#include "common/num_io.h"

namespace rit::cli {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    RIT_CHECK_MSG(arg.rfind("--", 0) == 0,
                  "expected --key=value argument, got: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::uint64_t Args::get_u64(const std::string& key, std::uint64_t def) {
  recognized_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const auto v = rit::parse_u64(it->second);
  RIT_CHECK_MSG(v.has_value(), "flag --" << key
                                         << " wants an unsigned integer, got '"
                                         << it->second << "'");
  return *v;
}

double Args::get_double(const std::string& key, double def) {
  recognized_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const auto v = rit::parse_double(it->second);
  RIT_CHECK_MSG(v.has_value(), "flag --" << key << " wants a number, got '"
                                         << it->second << "'");
  return *v;
}

bool Args::get_bool(const std::string& key, bool def) {
  recognized_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  RIT_CHECK_MSG(false, "flag --" << key << " wants a boolean, got '"
                                 << it->second << "'");
  return def;  // unreachable
}

std::string Args::get_string(const std::string& key, const std::string& def) {
  recognized_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

void Args::finish() const {
  for (const auto& [key, value] : values_) {
    RIT_CHECK_MSG(recognized_.count(key) > 0, "unknown flag --" << key);
  }
}

}  // namespace rit::cli
