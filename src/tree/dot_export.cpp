#include "tree/dot_export.h"

#include <array>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rit::tree {

namespace {
// A small colour-blind-friendly palette; groups cycle through it.
constexpr std::array<const char*, 8> kPalette = {
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f",
    "#cab2d6", "#ffff99", "#1f78b4", "#33a02c"};

std::string default_label(std::uint32_t node) {
  if (node == 0) return "platform";
  // += (not `"P" + ...`): GCC 12's -Wrestrict false-positives on
  // `"literal" + std::string&&` under -O3 (PR105651).
  std::string label = "P";
  label += std::to_string(node);
  return label;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}
}  // namespace

void write_dot(const IncentiveTree& tree, std::ostream& out,
               const DotOptions& options) {
  RIT_CHECK_MSG(tree.num_nodes() <= options.max_nodes,
                "tree has " << tree.num_nodes()
                            << " nodes, above the DOT export limit of "
                            << options.max_nodes);
  const auto& label = options.label
                          ? options.label
                          : std::function<std::string(std::uint32_t)>(
                                default_label);
  out << "digraph \"" << escape(options.name) << "\" {\n";
  out << "  rankdir=TB;\n";
  out << "  node [shape=ellipse, style=filled, fillcolor=white];\n";
  out << "  n0 [label=\"" << escape(label(0))
      << "\", shape=box, fillcolor=\"#dddddd\"];\n";
  for (std::uint32_t v = 1; v < tree.num_nodes(); ++v) {
    out << "  n" << v << " [label=\"" << escape(label(v)) << '"';
    if (options.color_group) {
      const int group = options.color_group(v);
      if (group >= 0) {
        out << ", fillcolor=\"" << kPalette[group % kPalette.size()] << '"';
      }
    }
    out << "];\n";
  }
  for (std::uint32_t v = 1; v < tree.num_nodes(); ++v) {
    out << "  n" << tree.parent(v) << " -> n" << v << ";\n";
  }
  out << "}\n";
}

std::string to_dot(const IncentiveTree& tree, const DotOptions& options) {
  std::ostringstream os;
  write_dot(tree, os, options);
  return os.str();
}

}  // namespace rit::tree
