// The incentive tree T of Sec. 3-A.
//
// Node 0 is always the crowdsensing platform (the root); it is not a user.
// Nodes 1..num_nodes-1 are participants. By library-wide convention,
// participant index i corresponds to tree node i+1 — mechanism code
// (core/rit.h) and attack code (attack/sybil_apply.h) both rely on it.
//
// The structure is immutable once built: the paper's solicitation phase ends
// before the auction starts, and sybil attacks are modelled as *rewrites*
// producing a new tree (attack module), never in-place mutation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"

namespace rit::tree {

class IncentiveTree {
 public:
  /// Builds from a parent vector: parents[i] is the parent of node i, for
  /// i >= 1; parents[0] is ignored (root). Parents may reference any node id
  /// (forward or backward); the constructor validates that the structure is
  /// a single tree rooted at 0 and computes depths and a preorder layout.
  explicit IncentiveTree(std::vector<std::uint32_t> parents);

  /// Convenience: a tree with only the platform root.
  static IncentiveTree root_only() { return IncentiveTree({0}); }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(parents_.size());
  }
  /// Number of participants (nodes excluding the platform root).
  std::uint32_t num_participants() const { return num_nodes() - 1; }

  std::uint32_t parent(std::uint32_t node) const {
    RIT_CHECK(node >= 1 && node < num_nodes());
    return parents_[node];
  }

  std::span<const std::uint32_t> children(std::uint32_t node) const {
    RIT_CHECK(node < num_nodes());
    return {child_targets_.data() + child_offsets_[node],
            child_offsets_[node + 1] - child_offsets_[node]};
  }

  /// Distance r_j from node to the root; depth(root) == 0, so users who
  /// joined at the very beginning have depth 1, matching the paper's r_j.
  std::uint32_t depth(std::uint32_t node) const {
    RIT_CHECK(node < num_nodes());
    return depths_[node];
  }

  std::uint32_t max_depth() const { return max_depth_; }

  /// Nodes in preorder (root first); the nodes of any subtree are contiguous.
  std::span<const std::uint32_t> preorder() const { return preorder_; }

  /// Position of `node` within preorder().
  std::uint32_t preorder_index(std::uint32_t node) const {
    RIT_CHECK(node < num_nodes());
    return preorder_pos_[node];
  }

  /// Size of the subtree rooted at `node`, including the node itself.
  std::uint32_t subtree_size(std::uint32_t node) const {
    RIT_CHECK(node < num_nodes());
    return subtree_size_[node];
  }

  /// The paper's T_j: strict descendants of `node` (excluding the node).
  std::vector<std::uint32_t> descendants(std::uint32_t node) const;

  /// True if `anc` is a strict ancestor of `node`.
  bool is_ancestor(std::uint32_t anc, std::uint32_t node) const;

  const std::vector<std::uint32_t>& parents() const { return parents_; }

 private:
  std::vector<std::uint32_t> parents_;
  std::vector<std::size_t> child_offsets_;
  std::vector<std::uint32_t> child_targets_;
  std::vector<std::uint32_t> depths_;
  std::vector<std::uint32_t> preorder_;
  std::vector<std::uint32_t> preorder_pos_;
  std::vector<std::uint32_t> subtree_size_;
  std::uint32_t max_depth_{0};
};

/// Node id of participant `i` under the library convention.
constexpr std::uint32_t node_of_participant(std::uint32_t i) { return i + 1; }
/// Participant index of node `n` (n must be >= 1).
constexpr std::uint32_t participant_of_node(std::uint32_t n) { return n - 1; }

}  // namespace rit::tree
