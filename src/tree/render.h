// ASCII rendering of small incentive trees (examples and failure messages).
#pragma once

#include <functional>
#include <string>

#include "tree/incentive_tree.h"

namespace rit::tree {

/// Renders the tree with box-drawing connectors. `label(node)` supplies the
/// text for each node; the default prints "platform" for the root and
/// "P<i>" (1-based, matching the paper) for participants. Rendering is
/// truncated after `max_nodes` nodes to keep accidental large dumps sane.
std::string render_ascii(
    const IncentiveTree& tree,
    const std::function<std::string(std::uint32_t)>& label = {},
    std::size_t max_nodes = 256);

}  // namespace rit::tree
