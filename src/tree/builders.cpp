#include "tree/builders.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/parallel.h"
#include "obs/obs.h"

namespace rit::tree {

SpanningForestResult build_spanning_forest(const graph::Graph& g,
                                           const SpanningForestOptions& opts) {
  RIT_TRACE_SPAN("tree.build");
  RIT_CHECK_MSG(!opts.seeds.empty(), "spanning forest needs at least one seed");
  const std::uint32_t n = g.num_nodes();
  const std::uint32_t cap = opts.max_users.value_or(n);
  constexpr std::uint32_t kUnset = std::numeric_limits<std::uint32_t>::max();

  // inviter[u]: graph node that recruited u; kRootInviter for seeds.
  constexpr std::uint32_t kRootInviter = std::numeric_limits<std::uint32_t>::max() - 1;
  std::vector<std::uint32_t> inviter(n, kUnset);
  std::vector<std::uint32_t> join_order;
  join_order.reserve(std::min(n, cap));

  std::vector<std::uint32_t> wave;
  for (std::uint32_t s : opts.seeds) {
    RIT_CHECK_MSG(s < n, "seed " << s << " out of range");
    if (inviter[s] != kUnset) continue;  // duplicate seed
    inviter[s] = kRootInviter;
    wave.push_back(s);
  }
  std::sort(wave.begin(), wave.end());
  for (std::uint32_t s : wave) {
    if (join_order.size() >= cap) break;
    join_order.push_back(s);
  }

  // BFS waves. Within a wave we iterate inviters in ascending id, so the
  // first inviter to claim a candidate is the smallest-index one — the
  // paper's tie-break. New joiners are appended in ascending graph id.
  //
  // Parallel path: workers scan disjoint contiguous blocks of the (sorted)
  // wave, each collecting (candidate, inviter) pairs for still-unclaimed
  // neighbours WITHOUT mutating inviter[] (reads race-free: nothing writes
  // during the scan). The claims are then applied serially in worker order;
  // since block order concatenates to the full ascending wave order, the
  // first recorded claim for each candidate is exactly the claim the serial
  // loop would have made, so the forest is bit-identical at any thread
  // count. Below ~2k wave entries the spawn overhead beats the win.
  const unsigned max_workers = rit::resolve_threads(opts.threads, n);
  constexpr std::size_t kParallelWaveFloor = 2048;
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> claims(
      max_workers);
  std::vector<std::uint32_t> next;
  while (!wave.empty() && join_order.size() < cap) {
    next.clear();
    const unsigned t = rit::resolve_threads(max_workers, wave.size());
    if (t > 1 && wave.size() >= kParallelWaveFloor) {
      rit::parallel_for_blocked(
          wave.size(), t,
          [&](std::uint64_t begin, std::uint64_t end, unsigned w) {
            auto& mine = claims[w];
            mine.clear();
            for (std::uint64_t i = begin; i < end; ++i) {
              const std::uint32_t u = wave[i];
              for (std::uint32_t v : g.out_neighbors(u)) {
                if (inviter[v] == kUnset) mine.emplace_back(v, u);
              }
            }
          });
      for (unsigned w = 0; w < t; ++w) {
        for (const auto& [v, u] : claims[w]) {
          if (inviter[v] != kUnset) continue;
          inviter[v] = u;
          next.push_back(v);
        }
      }
    } else {
      for (std::uint32_t u : wave) {
        for (std::uint32_t v : g.out_neighbors(u)) {
          if (inviter[v] != kUnset) continue;
          inviter[v] = u;
          next.push_back(v);
        }
      }
    }
    std::sort(next.begin(), next.end());
    const std::size_t size_before = join_order.size();
    for (std::uint32_t v : next) {
      if (join_order.size() >= cap) break;
      join_order.push_back(v);
    }
    // Anyone marked in this wave but cut off by the cap must be un-marked.
    // `next` is sorted and was appended front-to-back, so exactly its first
    // `appended` entries made it in; the tail is the cut-off set.
    if (join_order.size() >= cap) {
      const std::size_t appended = join_order.size() - size_before;
      for (std::size_t k = appended; k < next.size(); ++k) {
        inviter[next[k]] = kUnset;
      }
    }
    std::swap(wave, next);
    // Drop cut-off nodes from the frontier.
    std::erase_if(wave, [&](std::uint32_t v) { return inviter[v] == kUnset; });
  }

  if (opts.attach_unreached_to_root) {
    for (std::uint32_t u = 0; u < n && join_order.size() < cap; ++u) {
      if (inviter[u] == kUnset) {
        inviter[u] = kRootInviter;
        join_order.push_back(u);
      }
    }
  }

  SpanningForestResult res{IncentiveTree::root_only(), {}, {}, {}};
  res.joined.assign(n, false);
  res.node_of.assign(n, 0);
  res.graph_of.assign(join_order.size() + 1, 0);
  std::vector<std::uint32_t> parents(join_order.size() + 1, 0);
  for (std::uint32_t i = 0; i < join_order.size(); ++i) {
    const std::uint32_t u = join_order[i];
    res.joined[u] = true;
    res.node_of[u] = node_of_participant(i);
    res.graph_of[node_of_participant(i)] = u;
  }
  for (std::uint32_t i = 0; i < join_order.size(); ++i) {
    const std::uint32_t u = join_order[i];
    parents[node_of_participant(i)] =
        inviter[u] == kRootInviter ? 0 : res.node_of[inviter[u]];
  }
  res.tree = IncentiveTree(std::move(parents));
  return res;
}

IncentiveTree random_recursive_tree(std::uint32_t num_participants,
                                    double root_prob, rng::Rng& rng) {
  RIT_TRACE_SPAN("tree.build");
  RIT_CHECK(root_prob >= 0.0 && root_prob <= 1.0);
  std::vector<std::uint32_t> parents(num_participants + 1, 0);
  for (std::uint32_t i = 0; i < num_participants; ++i) {
    const std::uint32_t node = node_of_participant(i);
    if (i == 0 || rng.bernoulli(root_prob)) {
      parents[node] = 0;
    } else {
      parents[node] = node_of_participant(
          static_cast<std::uint32_t>(rng.uniform_index(i)));
    }
  }
  return IncentiveTree(std::move(parents));
}

IncentiveTree flat_tree(std::uint32_t num_participants) {
  return IncentiveTree(std::vector<std::uint32_t>(num_participants + 1, 0));
}

IncentiveTree chain_tree(std::uint32_t num_participants) {
  std::vector<std::uint32_t> parents(num_participants + 1, 0);
  for (std::uint32_t i = 1; i < num_participants; ++i) {
    parents[node_of_participant(i)] = node_of_participant(i - 1);
  }
  return IncentiveTree(std::move(parents));
}

}  // namespace rit::tree
