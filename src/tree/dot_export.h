// Graphviz DOT export of incentive trees.
//
// `dot -Tpdf tree.dot -o tree.pdf` renders the solicitation structure;
// optional per-node annotations (task type as fill colour, payment as
// label) make mechanism outcomes visually auditable.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "tree/incentive_tree.h"

namespace rit::tree {

struct DotOptions {
  /// Label for each node; default "platform" / "P<i>".
  std::function<std::string(std::uint32_t)> label;
  /// Optional fill-colour group per node (e.g. task type); nodes in the
  /// same group share a colour from a fixed palette. Return any value < 0
  /// for "no colour". Root is always drawn as a grey box.
  std::function<int(std::uint32_t)> color_group;
  /// Graph name in the DOT header.
  std::string name = "incentive_tree";
  /// Safety valve: refuse to render trees larger than this many nodes.
  std::size_t max_nodes = 100000;
};

/// Writes the tree in DOT format. Throws CheckFailure when the tree exceeds
/// max_nodes.
void write_dot(const IncentiveTree& tree, std::ostream& out,
               const DotOptions& options = {});

/// Convenience: DOT as a string.
std::string to_dot(const IncentiveTree& tree, const DotOptions& options = {});

}  // namespace rit::tree
