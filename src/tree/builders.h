// Incentive-tree builders.
//
// The primary builder reproduces Sec. 7-A exactly: a BFS spanning forest of
// the social graph in which every joined user refers all of its un-joined
// (out-)neighbours, simultaneous invitations are broken toward the smallest
// inviter index, and the forest roots hang off the platform root. Growth
// stops once the threshold N of Sec. 3-A is reached.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"

namespace rit::tree {

struct SpanningForestOptions {
  /// Graph nodes that join at the very beginning (children of the platform).
  /// Must be non-empty.
  std::vector<std::uint32_t> seeds;
  /// Solicitation stops once this many users have joined (the paper's N).
  /// Default: everyone reachable.
  std::optional<std::uint32_t> max_users;
  /// If true, graph nodes unreachable from the seeds (and not cut off by
  /// max_users) are attached directly to the platform root, modelling users
  /// who discover the job independently. Keeps participant count == graph
  /// node count, which the simulation scenarios rely on.
  bool attach_unreached_to_root = true;
  /// Worker threads for the BFS wave scan (0 = one per hardware thread).
  /// Workers collect invitation candidates over disjoint blocks of the
  /// ascending wave without touching shared state; claims are then merged
  /// serially in worker order, which replays the serial first-claim /
  /// smallest-inviter tie-break exactly. The forest is bit-identical at any
  /// setting — the knob trades wall-clock for cores, never output.
  unsigned threads = 1;
};

struct SpanningForestResult {
  IncentiveTree tree;
  /// joined[u]: whether graph node u is a participant.
  std::vector<bool> joined;
  /// node_of[u]: tree node of graph node u (0 if not joined).
  std::vector<std::uint32_t> node_of;
  /// graph_of[node]: graph node of tree node (root slot unused).
  std::vector<std::uint32_t> graph_of;
};

/// Builds the Sec. 7-A tree. Tree node ids are assigned in join order
/// (BFS wave by wave, ascending graph id within a wave), so participant i is
/// the (i+1)-th user to join.
SpanningForestResult build_spanning_forest(const graph::Graph& g,
                                           const SpanningForestOptions& opts);

/// Uniform random recursive tree over `num_participants` users: participant
/// i attaches to the platform root with probability `root_prob`, otherwise
/// to a uniformly random earlier participant. Used by tests and by scenarios
/// that do not model an explicit social graph.
IncentiveTree random_recursive_tree(std::uint32_t num_participants,
                                    double root_prob, rng::Rng& rng);

/// All participants directly under the platform root (an auction with no
/// solicitation structure); RIT then degenerates to its auction phase plus
/// zero tree rewards, which tests exploit.
IncentiveTree flat_tree(std::uint32_t num_participants);

/// Single chain: root -> p0 -> p1 -> ... Deepest possible tree.
IncentiveTree chain_tree(std::uint32_t num_participants);

}  // namespace rit::tree
