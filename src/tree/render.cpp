#include "tree/render.h"

#include <sstream>
#include <vector>

namespace rit::tree {

namespace {
std::string default_label(std::uint32_t node) {
  if (node == 0) return "platform";
  // += (not `"P" + ...`): GCC 12's -Wrestrict false-positives on
  // `"literal" + std::string&&` under -O3 (PR105651).
  std::string label = "P";  // node i is participant P_i, 1-based
  label += std::to_string(node);
  return label;
}

void render_node(const IncentiveTree& tree,
                 const std::function<std::string(std::uint32_t)>& label,
                 std::uint32_t node, const std::string& prefix, bool last,
                 std::size_t& budget, std::ostringstream& os) {
  if (budget == 0) return;
  --budget;
  if (node == 0) {
    os << label(node) << '\n';
  } else {
    os << prefix << (last ? "`-- " : "|-- ") << label(node) << '\n';
  }
  auto kids = tree.children(node);
  const std::string child_prefix =
      node == 0 ? "" : prefix + (last ? "    " : "|   ");
  for (std::size_t i = 0; i < kids.size(); ++i) {
    if (budget == 0) {
      os << child_prefix << "... (truncated)\n";
      return;
    }
    render_node(tree, label, kids[i], child_prefix, i + 1 == kids.size(),
                budget, os);
  }
}
}  // namespace

std::string render_ascii(
    const IncentiveTree& tree,
    const std::function<std::string(std::uint32_t)>& label,
    std::size_t max_nodes) {
  std::ostringstream os;
  std::size_t budget = max_nodes;
  const auto& lbl =
      label ? label : std::function<std::string(std::uint32_t)>(default_label);
  render_node(tree, lbl, 0, "", true, budget, os);
  return os.str();
}

}  // namespace rit::tree
