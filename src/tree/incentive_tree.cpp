#include "tree/incentive_tree.h"

#include <algorithm>

namespace rit::tree {

IncentiveTree::IncentiveTree(std::vector<std::uint32_t> parents)
    : parents_(std::move(parents)) {
  const std::uint32_t n = num_nodes();
  RIT_CHECK_MSG(n >= 1, "tree must contain at least the platform root");
  parents_[0] = 0;  // normalize the ignored root slot
  for (std::uint32_t v = 1; v < n; ++v) {
    RIT_CHECK_MSG(parents_[v] < n,
                  "node " << v << " has out-of-range parent " << parents_[v]);
    RIT_CHECK_MSG(parents_[v] != v, "node " << v << " is its own parent");
  }

  // Children adjacency (CSR), ordered by child id for determinism.
  child_offsets_.assign(n + 1, 0);
  for (std::uint32_t v = 1; v < n; ++v) ++child_offsets_[parents_[v] + 1];
  for (std::uint32_t i = 1; i <= n; ++i) child_offsets_[i] += child_offsets_[i - 1];
  child_targets_.resize(n - 1);
  {
    std::vector<std::size_t> cursor(child_offsets_.begin(),
                                    child_offsets_.end() - 1);
    for (std::uint32_t v = 1; v < n; ++v) {
      child_targets_[cursor[parents_[v]]++] = v;
    }
  }

  // Iterative preorder DFS from the root; doubles as the acyclicity /
  // connectivity check (every node must be visited exactly once).
  depths_.assign(n, 0);
  preorder_.clear();
  preorder_.reserve(n);
  preorder_pos_.assign(n, 0);
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const std::uint32_t v = stack.back();
    stack.pop_back();
    preorder_pos_[v] = static_cast<std::uint32_t>(preorder_.size());
    preorder_.push_back(v);
    auto kids = children(v);
    // Push in reverse so children are visited in ascending id order.
    for (std::size_t i = kids.size(); i > 0; --i) {
      const std::uint32_t c = kids[i - 1];
      depths_[c] = depths_[v] + 1;
      stack.push_back(c);
    }
  }
  RIT_CHECK_MSG(preorder_.size() == n,
                "parent vector does not describe a single tree rooted at 0: "
                "visited " << preorder_.size() << " of " << n << " nodes");
  max_depth_ = *std::max_element(depths_.begin(), depths_.end());

  // Subtree sizes via reverse-preorder accumulation.
  subtree_size_.assign(n, 1);
  for (std::size_t i = preorder_.size(); i > 1; --i) {
    const std::uint32_t v = preorder_[i - 1];
    subtree_size_[parents_[v]] += subtree_size_[v];
  }
}

std::vector<std::uint32_t> IncentiveTree::descendants(
    std::uint32_t node) const {
  RIT_CHECK(node < num_nodes());
  const std::uint32_t begin = preorder_pos_[node];
  const std::uint32_t size = subtree_size_[node];
  std::vector<std::uint32_t> out;
  out.reserve(size - 1);
  for (std::uint32_t i = begin + 1; i < begin + size; ++i) {
    out.push_back(preorder_[i]);
  }
  return out;
}

bool IncentiveTree::is_ancestor(std::uint32_t anc, std::uint32_t node) const {
  RIT_CHECK(anc < num_nodes());
  RIT_CHECK(node < num_nodes());
  if (anc == node) return false;
  const std::uint32_t begin = preorder_pos_[anc];
  const std::uint32_t pos = preorder_pos_[node];
  return pos > begin && pos < begin + subtree_size_[anc];
}

}  // namespace rit::tree
