// Ablation: round-budget policy (DESIGN.md ambiguity #3).
//
// Side-by-side comparison of the literal Alg. 3 budget (kTheoretical) and
// run-to-completion across an oversupply sweep, in two regimes:
//  * the paper's regime (m = 10 types, K_max = 20): the literal budget
//    clamps to one round per type and essentially never completes the job —
//    the headline reason the simulations default to run-to-completion;
//  * a consensus-friendly regime (2 types, K_max = 4): the literal budget
//    gets several rounds and the two policies coincide.
#include <vector>

#include "bench_support.h"
#include "sim/runner.h"

namespace {

using namespace rit;
using namespace rit::bench;

std::vector<std::vector<double>> run_regime(const BenchOptions& opts,
                                            bool paper_regime) {
  std::vector<std::vector<double>> rows;
  for (const std::uint32_t users_paper : {20000u, 30000u, 45000u, 60000u}) {
    sim::Scenario s;
    s.num_users = scaled(users_paper, opts.scale, 200);
    if (paper_regime) {
      s.num_types = 10;
      s.tasks_per_type = scaled(2000, opts.scale, 10);
      s.k_max = 20;
    } else {
      s.num_types = 2;
      s.tasks_per_type = scaled(10000, opts.scale, 50);
      s.k_max = 4;
    }
    apply_options(opts, s);

    sim::Scenario theo = s;
    theo.mechanism.round_budget_policy = core::RoundBudgetPolicy::kTheoretical;
    sim::Scenario comp = s;
    comp.mechanism.round_budget_policy =
        core::RoundBudgetPolicy::kRunToCompletion;

    const sim::AggregateMetrics at =
        run_point(opts, theo);
    const sim::AggregateMetrics ac =
        run_point(opts, comp);
    rows.push_back({static_cast<double>(users_paper), at.success_rate(),
                    ac.success_rate(), at.avg_utility_rit.mean(),
                    ac.avg_utility_rit.mean(), at.total_payment_rit.mean(),
                    ac.total_payment_rit.mean(), at.degraded_rate(),
                    ac.degraded_rate()});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv, "ablation_rounds", 3);
  const std::vector<std::string> header{
      "users(paper)", "succ_theo", "succ_comp",     "util_theo",
      "util_comp",    "pay_theo",  "pay_comp",      "degr_theo",
      "degr_comp"};
  emit("Ablation — round budget, paper regime (m=10 types, K_max=20)", opts,
       header, run_regime(opts, /*paper_regime=*/true));
  BenchOptions friendly = opts;
  if (!friendly.csv_path.empty()) {
    friendly.csv_path = "bench_results/ablation_rounds_friendly.csv";
  }
  emit("Ablation — round budget, friendly regime (2 types, K_max=4)",
       friendly, header, run_regime(opts, /*paper_regime=*/false));
  finish(opts);
  return 0;
}
