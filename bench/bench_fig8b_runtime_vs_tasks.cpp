// Fig. 8(b): running time vs number of tasks per type.
// Expected shape: approximately linear in |J| (Theorem 3).
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig8b_runtime_vs_tasks", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_task_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.runtime_auction_ms.mean(),
                    p.metrics.runtime_rit_ms.mean(),
                    p.metrics.runtime_rit_ms.min(),
                    p.metrics.runtime_rit_ms.max(),
                    p.metrics.runtime_rit_ms.ci95_half_width()});
  }
  const std::vector<std::string> header{"m_i(paper)", "auction_phase_ms",
                                        "RIT_ms", "RIT_min_ms", "RIT_max_ms",
                                        "RIT_ci95"};
  emit("Fig. 8(b) — running time (ms) vs tasks per type", opts, header,
       rows);
  emit_svg("Fig. 8(b): running time vs tasks per type", opts, header, rows,
           {1, 2});
  finish(opts);
  return 0;
}
