// Ablation: the robustness target H.
//
// Higher H tightens the per-type truthfulness target eta = H^(1/m), which
// shrinks the theoretical round budget and therefore the success rate under
// the literal Alg. 3 budget. Under run-to-completion the allocation always
// finishes, but the achieved probability bound (reported per run) drops as
// more rounds are spent. This bench reports both policies side by side.
#include <vector>

#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_h_sweep", 3);

  std::vector<std::vector<double>> rows;
  for (const double h : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    // A consensus-friendly regime (single type, K_max << m_i) so the
    // theoretical budget actually varies with H instead of pinning at the
    // 1-round clamp; the paper's own regime is studied by ablation_rounds.
    sim::Scenario s;
    s.num_users = scaled(30000, opts.scale, 200);
    s.num_types = 1;
    s.tasks_per_type = scaled(20000, opts.scale, 100);
    s.k_max = 4;
    apply_options(opts, s);
    s.mechanism.h = h;

    // Theoretical-budget success rate.
    sim::Scenario theo = s;
    theo.mechanism.round_budget_policy = core::RoundBudgetPolicy::kTheoretical;
    const sim::AggregateMetrics agg_theo =
        run_point(opts, theo);

    // Run-to-completion achieved bound: measure on fresh instances.
    sim::Scenario comp = s;
    comp.mechanism.round_budget_policy =
        core::RoundBudgetPolicy::kRunToCompletion;
    struct Worker {
      stats::OnlineStats achieved;
      stats::OnlineStats budget_rounds;
      core::RitWorkspace ws;
    };
    std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
    sim::parallel_trials(
        opts.trials, workers, [&](Worker& wk, std::uint64_t t) {
          const sim::TrialInstance inst = sim::make_instance(comp, t);
          rng::Rng rng(inst.mechanism_seed);
          const core::RitResult r =
              core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                            comp.mechanism, rng, wk.ws);
          wk.achieved.add(r.achieved_probability);
          double rounds = 0.0;
          for (const auto& info : r.type_info) {
            rounds += info.budget.max_rounds;
          }
          wk.budget_rounds.add(rounds /
                               static_cast<double>(r.type_info.size()));
        });
    stats::OnlineStats achieved;
    stats::OnlineStats budget_rounds;
    for (const Worker& wk : workers) {
      achieved.merge(wk.achieved);
      budget_rounds.merge(wk.budget_rounds);
    }

    rows.push_back({h, budget_rounds.mean(), agg_theo.success_rate(),
                    achieved.mean(), agg_theo.degraded_rate()});
  }
  emit("Ablation — H sweep", opts,
       {"H", "theoretical_rounds/type", "theoretical_success_rate",
        "completion_achieved_bound", "theoretical_degraded_rate"},
       rows);
  finish(opts);
  return 0;
}
