// Million-user scale ladder: one full trial (graph -> forest -> RIT) at
// each population rung N in {1e5, 3e5, 1e6, 3e6, 1e7} divided by --scale
// (default 10, so the stock run tops out at one million users; --scale=1
// climbs to ten million). Demand scales with the population (m_i = N/200,
// i.e. total demand = 5% of users) so every rung exercises the same
// supply/demand regime and the series isolates how runtime grows with N.
//
// This is the harness behind docs/scaling.md: combine with
// --intra-threads=N to engage the deterministic intra-trial parallel
// passes (bit-identical at any setting), --perf-counters for per-phase
// hardware counters, and --history-out to append the run to the
// perf-regression ledger for ritcs-bench-diff.
#include "bench_support.h"

#include "common/log.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "scale", 1);

  constexpr std::uint64_t kPaperLadder[] = {100000, 300000, 1000000, 3000000,
                                            10000000};

  std::vector<std::vector<double>> rows;
  for (std::uint64_t paper_n : kPaperLadder) {
    rit::sim::Scenario s;
    s.num_types = 10;
    s.k_max = 20;
    s.cost_max = 10.0;
    s.mechanism.h = 0.8;
    s.initial_joiners = 10;
    apply_options(opts, s);
    s.num_users = scaled(paper_n, opts.scale, 100);
    s.tasks_per_type = scaled(paper_n / 200, opts.scale, 10);

    const rit::log::Field fields[] = {
        {"n", std::to_string(paper_n)},
        {"users", std::to_string(s.num_users)},
        {"tasks_per_type", std::to_string(s.tasks_per_type)},
        {"intra_threads", std::to_string(opts.intra_threads)}};
    rit::log::emit(rit::log::Level::kInfo, "scale rung", fields);

    const std::uint64_t t0 = rit::obs::trace_now_ns();
    const rit::sim::AggregateMetrics m = run_point(opts, s);
    const double rung_wall_ms =
        static_cast<double>(rit::obs::trace_now_ns() - t0) / 1e6;

    rows.push_back({static_cast<double>(s.num_users),
                    static_cast<double>(s.tasks_per_type),
                    rung_wall_ms / static_cast<double>(opts.trials),
                    m.runtime_auction_ms.mean(), m.runtime_rit_ms.mean(),
                    m.runtime_rit_ms.max(), m.success_rate()});
  }

  const std::vector<std::string> header{
      "users",  "tasks_per_type", "trial_wall_ms", "auction_ms",
      "RIT_ms", "RIT_max_ms",     "success_rate"};
  emit("Scale ladder — per-trial runtime vs population", opts, header, rows);
  emit_svg("Scale ladder: runtime vs users", opts, header, rows, {2, 3, 4});
  finish(opts);
  return 0;
}
