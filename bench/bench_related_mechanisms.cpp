// Cross-mechanism comparison on identical instances: RIT vs its relatives.
//
//   RIT            — the paper's mechanism (consensus auction + tree).
//   auction-only   — RIT's auction phase with no solicitation rewards.
//   k-th price     — the deterministic truthful auction of Sec. 4-A, no
//                    tree (the classic no-solicitation strawman).
//   naive combo    — k-th price + contribution tree (Sec. 4's broken
//                    composition; own_weight 2 doubles winners' payments).
//
// For each, the table reports the platform's expenditure, the average user
// utility, and whether the configuration is robust (truthful+sybil-proof):
// the factor between the k-th price column and the RIT column is the total
// price of solicitation + robustness — the "who wins, by what factor" view
// the paper's evaluation implies but never prints.
#include <vector>

#include "baselines/kth_price_auction.h"
#include "core/efficiency.h"
#include "baselines/naive_combo.h"
#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "related_mechanisms", 10);

  sim::Scenario s;
  s.num_users = scaled(30000, opts.scale, 300);
  s.num_types = 5;
  s.tasks_per_type = scaled(2000, opts.scale, 20);
  s.k_max = 8;
  apply_options(opts, s);

  struct Worker {
    stats::OnlineStats pay_rit;
    stats::OnlineStats pay_auction;
    stats::OnlineStats pay_kth;
    stats::OnlineStats pay_naive;
    stats::OnlineStats util_rit;
    stats::OnlineStats util_auction;
    stats::OnlineStats util_kth;
    stats::OnlineStats util_naive;
    stats::OnlineStats eff_rit;
    stats::OnlineStats eff_kth;
    core::RitWorkspace ws;
  };
  std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
  sim::parallel_trials(
      opts.trials, workers, [&](Worker& wk, std::uint64_t trial) {
        const sim::TrialInstance inst = sim::make_instance(s, trial);
        const auto& asks = inst.population.truthful_asks;
        const auto& costs = inst.population.costs;
        const double n = static_cast<double>(asks.size());

        {
          rng::Rng rng(inst.mechanism_seed);
          const core::RitResult r = core::run_rit(inst.job, asks, inst.tree,
                                                  s.mechanism, rng, wk.ws);
          if (r.success) {
            wk.pay_rit.add(r.total_payment());
            wk.pay_auction.add(r.total_auction_payment());
            double u_full = 0.0;
            double u_auct = 0.0;
            for (std::uint32_t j = 0; j < asks.size(); ++j) {
              u_full += r.utility_of(j, costs[j]);
              u_auct += r.auction_utility_of(j, costs[j]);
            }
            wk.util_rit.add(u_full / n);
            wk.util_auction.add(u_auct / n);
            wk.eff_rit.add(core::cost_efficiency(inst.job, asks, r.allocation));
          }
        }
        {
          const auto kth = baselines::multi_unit_kth_price(inst.job, asks);
          if (kth.success) {
            double pay = 0.0;
            double u = 0.0;
            for (std::uint32_t j = 0; j < asks.size(); ++j) {
              pay += kth.auction_payment[j];
              u += core::utility(kth.auction_payment[j], kth.allocation[j],
                                 costs[j]);
            }
            wk.pay_kth.add(pay);
            wk.util_kth.add(u / n);
            wk.eff_kth.add(
                core::cost_efficiency(inst.job, asks, kth.allocation));
          }
          const auto naive =
              baselines::run_naive_combo(inst.job, asks, inst.tree);
          if (naive.success) {
            double pay = 0.0;
            double u = 0.0;
            for (std::uint32_t j = 0; j < asks.size(); ++j) {
              pay += naive.payment[j];
              u += naive.utility_of(j, costs[j]);
            }
            wk.pay_naive.add(pay);
            wk.util_naive.add(u / n);
          }
        }
      });
  stats::OnlineStats pay_rit;
  stats::OnlineStats pay_auction;
  stats::OnlineStats pay_kth;
  stats::OnlineStats pay_naive;
  stats::OnlineStats util_rit;
  stats::OnlineStats util_auction;
  stats::OnlineStats util_kth;
  stats::OnlineStats util_naive;
  stats::OnlineStats eff_rit;
  stats::OnlineStats eff_kth;
  for (const Worker& wk : workers) {
    pay_rit.merge(wk.pay_rit);
    pay_auction.merge(wk.pay_auction);
    pay_kth.merge(wk.pay_kth);
    pay_naive.merge(wk.pay_naive);
    util_rit.merge(wk.util_rit);
    util_auction.merge(wk.util_auction);
    util_kth.merge(wk.util_kth);
    util_naive.merge(wk.util_naive);
    eff_rit.merge(wk.eff_rit);
    eff_kth.merge(wk.eff_kth);
  }

  emit("Related mechanisms on identical instances "
       "(0=RIT 1=auction-only 2=kth-price 3=naive-combo)",
       opts,
       {"mechanism", "total_payment", "avg_utility", "cost_efficiency",
        "solicits?", "robust?"},
       {{0.0, pay_rit.mean(), util_rit.mean(), eff_rit.mean(), 1.0, 1.0},
        {1.0, pay_auction.mean(), util_auction.mean(), eff_rit.mean(), 0.0,
         1.0},
        {2.0, pay_kth.mean(), util_kth.mean(), eff_kth.mean(), 0.0, 0.0},
        {3.0, pay_naive.mean(), util_naive.mean(), eff_kth.mean(), 1.0,
         0.0}});
  finish(opts);
  return 0;
}
