// Fig. 6(a): average user utility vs number of users.
// Paper setup: m_i = 5000 per type, n = 40000..80000, H = 0.8, 1000 trials.
// Expected shape: both series decrease with n (fiercer competition lowers
// auction payments); the RIT series sits above the auction-phase series
// because the payment determination phase adds solicitation rewards.
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig6a_utility_vs_users", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_user_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.avg_utility_auction.mean(),
                    p.metrics.avg_utility_rit.mean(),
                    p.metrics.avg_utility_rit.ci95_half_width(),
                    p.metrics.success_rate(),
                    p.metrics.tasks_allocated.mean()});
  }
  const std::vector<std::string> header{"users(paper)",  "auction_phase",
                                        "RIT",           "RIT_ci95",
                                        "success_rate",  "tasks_alloc"};
  emit("Fig. 6(a) — average user utility vs number of users", opts, header,
       rows);
  emit_svg("Fig. 6(a): avg user utility vs users", opts, header, rows,
           {1, 2});
  finish(opts);
  return 0;
}
