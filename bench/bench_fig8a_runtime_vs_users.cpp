// Fig. 8(a): running time vs number of users.
// Expected shape: approximately linear in n for both series (Theorem 3:
// O(N |J|)); the payment determination phase adds only O(N log N) on top.
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig8a_runtime_vs_users", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_user_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.runtime_auction_ms.mean(),
                    p.metrics.runtime_rit_ms.mean(),
                    p.metrics.runtime_rit_ms.min(),
                    p.metrics.runtime_rit_ms.max(),
                    p.metrics.runtime_rit_ms.ci95_half_width()});
  }
  const std::vector<std::string> header{"users(paper)", "auction_phase_ms",
                                        "RIT_ms", "RIT_min_ms", "RIT_max_ms",
                                        "RIT_ci95"};
  emit("Fig. 8(a) — running time (ms) vs number of users", opts, header,
       rows);
  emit_svg("Fig. 8(a): running time vs users", opts, header, rows, {1, 2});
  finish(opts);
  return 0;
}
