// Fig. 7(b): total platform payment vs number of tasks per type.
// Expected shape: increasing in the job size; RIT above the auction phase
// with premium <= total auction payment.
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig7b_payment_vs_tasks", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_task_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.total_payment_auction.mean(),
                    p.metrics.total_payment_rit.mean(),
                    p.metrics.solicitation_premium.mean(),
                    p.metrics.success_rate()});
  }
  const std::vector<std::string> header{"m_i(paper)", "auction_phase",
                                        "RIT", "premium", "success_rate"};
  emit("Fig. 7(b) — total payment vs tasks per type", opts, header, rows, 2);
  emit_svg("Fig. 7(b): total payment vs tasks per type", opts, header, rows,
           {1, 2});
  finish(opts);
  return 0;
}
