#include "figure_sweeps.h"

#include <string>

#include "common/log.h"
#include "sim/runner.h"

namespace rit::bench {

namespace {
constexpr std::uint32_t kPaperUsersLo = 40000;
constexpr std::uint32_t kPaperUsersHi = 80000;
constexpr std::uint32_t kPaperTasksPerType = 5000;

constexpr std::uint32_t kPaperDemandLo = 1000;
constexpr std::uint32_t kPaperDemandHi = 3000;
constexpr std::uint32_t kPaperUsersFixed = 30000;

sim::Scenario base_scenario(const BenchOptions& opts) {
  sim::Scenario s;
  s.num_types = 10;  // the paper's m = 10
  s.k_max = 20;      // k_j ~ U(0, 20]
  s.cost_max = 10.0; // a_j ~ U(0, 10]
  s.mechanism.h = 0.8;
  s.initial_joiners = 10;
  apply_options(opts, s);
  return s;
}

std::vector<SweepPoint> run_sweep(const BenchOptions& opts,
                                  std::uint32_t paper_lo,
                                  std::uint32_t paper_hi,
                                  bool sweep_is_users) {
  std::vector<SweepPoint> out;
  for (std::uint32_t x : linspace(paper_lo, paper_hi, opts.points)) {
    sim::Scenario s = base_scenario(opts);
    if (sweep_is_users) {
      s.num_users = scaled(x, opts.scale, 100);
      s.tasks_per_type = scaled(kPaperTasksPerType, opts.scale, 10);
    } else {
      s.num_users = scaled(kPaperUsersFixed, opts.scale, 100);
      s.tasks_per_type = scaled(x, opts.scale, 10);
    }
    // Through rit::log (not raw stderr) so --json-logs reshapes these too.
    const log::Field fields[] = {
        {sweep_is_users ? "n" : "m_i", std::to_string(x)},
        {"users", std::to_string(s.num_users)},
        {"tasks_per_type", std::to_string(s.tasks_per_type)}};
    log::emit(log::Level::kInfo, "sweep point", fields);
    out.push_back(SweepPoint{
        x, run_point(opts, s,
                     [&](std::uint64_t done, std::uint64_t total) {
                       const log::Field pf[] = {
                           {"done", std::to_string(done)},
                           {"total", std::to_string(total)}};
                       log::emit(log::Level::kInfo, "progress", pf);
                     })});
  }
  return out;
}
}  // namespace

std::vector<SweepPoint> run_user_sweep(const BenchOptions& opts) {
  return run_sweep(opts, kPaperUsersLo, kPaperUsersHi, /*sweep_is_users=*/true);
}

std::vector<SweepPoint> run_task_sweep(const BenchOptions& opts) {
  return run_sweep(opts, kPaperDemandLo, kPaperDemandHi,
                   /*sweep_is_users=*/false);
}

}  // namespace rit::bench
