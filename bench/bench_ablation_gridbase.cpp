// Ablation: the consensus grid base c (the paper fixes c = 2).
//
// The grid {c^(z+y)} is the collusion-resistance dial: a coalition moving
// the below-threshold count by k flips the consensus value on a y-measure
// of log_c(z/(z-k)) — smaller for larger c — but the winner count rounds
// down by up to a factor c, so large bases throw away supply and need more
// rounds (higher payments, slower fills). This bench sweeps c and reports
// the theoretical per-round truthfulness bound alongside the realized
// rounds, payments, and utilities.
#include <cmath>
#include <vector>

#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_gridbase", 5);

  std::vector<std::vector<double>> rows;
  for (const double base : {1.5, 2.0, 3.0, 4.0, 8.0}) {
    sim::Scenario s;
    s.num_users = scaled(30000, opts.scale, 300);
    s.num_types = 5;
    s.tasks_per_type = scaled(2000, opts.scale, 20);
    s.k_max = 6;
    apply_options(opts, s);
    s.mechanism.consensus_log_base = base;

    struct Worker {
      stats::OnlineStats rounds;
      stats::OnlineStats bound;
      core::RitWorkspace ws;
    };
    std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
    sim::parallel_trials(
        opts.trials, workers, [&](Worker& wk, std::uint64_t trial) {
          const sim::TrialInstance inst = sim::make_instance(s, trial);
          rng::Rng rng(inst.mechanism_seed);
          const core::RitResult r =
              core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                            s.mechanism, rng, wk.ws);
          double total_rounds = 0.0;
          for (const auto& info : r.type_info) {
            total_rounds += info.rounds_used;
            wk.bound.add(info.budget.per_round_bound);
          }
          wk.rounds.add(total_rounds / static_cast<double>(r.type_info.size()));
        });
    stats::OnlineStats rounds;
    stats::OnlineStats bound;
    for (const Worker& wk : workers) {
      rounds.merge(wk.rounds);
      bound.merge(wk.bound);
    }
    const sim::AggregateMetrics agg =
        run_point(opts, s);
    rows.push_back({base, bound.mean(), rounds.mean(), agg.success_rate(),
                    agg.avg_utility_rit.mean(), agg.total_payment_rit.mean(),
                    agg.degraded_rate()});
  }
  emit("Ablation — consensus grid base c (paper: 2)", opts,
       {"grid_base", "per_round_bound", "rounds/type", "success_rate",
        "avg_utility", "total_payment", "degraded_rate"},
       rows);
  finish(opts);
  return 0;
}
