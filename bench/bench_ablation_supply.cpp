// Ablation: how much solicitation is enough? (Remark 6.1)
//
// The paper recommends growing the incentive tree until the joined users
// can complete at least 2*m_i tasks per type. This bench sweeps the supply
// multiple from 1.0x to 4.0x, grows the tree with sim::grow_until_supply,
// and measures: recruited-user count, allocation success rate, average
// clearing price level (total payment / tasks), and average utility —
// quantifying the recommendation and the marginal value of over-recruiting.
#include <vector>

#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/growth.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_supply", 5);

  sim::Scenario s;
  s.num_users = scaled(60000, opts.scale, 500);  // recruitment pool
  s.num_types = 5;
  s.tasks_per_type = scaled(3000, opts.scale, 20);
  s.k_max = 8;
  apply_options(opts, s);

  std::vector<std::vector<double>> rows;
  for (const double multiple : {1.0, 1.5, 2.0, 3.0, 4.0}) {
    struct Worker {
      stats::OnlineStats joined;
      stats::OnlineStats utility;
      stats::OnlineStats price_level;
      std::uint64_t successes{0};
      core::RitWorkspace ws;
    };
    std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
    sim::parallel_trials(
        opts.trials, workers, [&](Worker& wk, std::uint64_t trial) {
          rng::Rng graph_rng(s.trial_seed(trial, 0));
          rng::Rng pop_rng(s.trial_seed(trial, 1));
          rng::Rng job_rng(s.trial_seed(trial, 2));
          const graph::Graph g = sim::generate_graph(s, graph_rng);
          const sim::Population pop = sim::generate_population(s, pop_rng);
          const core::Job job = sim::generate_job(s, job_rng);

          sim::GrowthOptions gopts;
          gopts.supply_multiple = multiple;
          gopts.seeds = {0, 1, 2, 3};
          const sim::GrowthResult grown =
              sim::grow_until_supply(g, pop, job, gopts);
          wk.joined.add(static_cast<double>(grown.joined.size()));

          std::vector<core::Ask> asks;
          std::vector<double> costs;
          for (std::uint32_t u : grown.joined) {
            asks.push_back(pop.truthful_asks[u]);
            costs.push_back(pop.costs[u]);
          }
          rng::Rng rng(s.trial_seed(trial, 3));
          const core::RitResult r =
              core::run_rit(job, asks, grown.tree, s.mechanism, rng, wk.ws);
          if (r.success) {
            ++wk.successes;
            double total_utility = 0.0;
            for (std::size_t j = 0; j < asks.size(); ++j) {
              total_utility +=
                  r.utility_of(static_cast<std::uint32_t>(j), costs[j]);
            }
            wk.utility.add(total_utility / static_cast<double>(asks.size()));
            wk.price_level.add(r.total_payment() /
                               static_cast<double>(job.total_tasks()));
          }
        });
    stats::OnlineStats joined;
    stats::OnlineStats utility;
    stats::OnlineStats price_level;
    std::uint64_t successes = 0;
    for (const Worker& wk : workers) {
      joined.merge(wk.joined);
      utility.merge(wk.utility);
      price_level.merge(wk.price_level);
      successes += wk.successes;
    }
    rows.push_back({multiple, joined.mean(),
                    static_cast<double>(successes) /
                        static_cast<double>(opts.trials),
                    utility.count() > 0 ? utility.mean() : 0.0,
                    price_level.count() > 0 ? price_level.mean() : 0.0});
  }
  emit("Ablation — solicitation supply multiple (Remark 6.1 says 2.0)", opts,
       {"supply_multiple", "users_recruited", "success_rate", "avg_utility",
        "payment_per_task"},
       rows);
  finish(opts);
  return 0;
}
