// Micro-benchmarks (google-benchmark) for the hot paths: consensus
// rounding, one CRA round, Extract, the payment phase (fast vs reference),
// the substrate generators, and the tracer's own overhead (baseline vs
// idle-span vs active-span — the idle pair is the <2% guarantee from
// docs/observability.md).
//
// Besides the google-benchmark flags, accepts --trace-out=PATH,
// --metrics-out=PATH and --json=PATH (summary, default
// bench_results/BENCH_micro.json, "none" disables). Tracing is off by
// default here so span recording cannot perturb the numbers; --trace-out
// turns it on.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_support.h"
#include "core/cra.h"
#include "core/extract.h"
#include "core/payment.h"
#include "core/rit.h"
#include "graph/generators.h"
#include "obs/obs.h"
#include "rng/rng.h"
#include "tree/builders.h"

// --- Heap-allocation counter ----------------------------------------------
// Replacing the global (non-aligned) operator new/delete pair lets the
// BM_CraRound* arms report heap allocations per round as a hard number
// instead of inferring them from timing. The throwing forms below are the
// funnel every other default form (nothrow, array) reaches, so one counter
// covers them all; the aligned forms are left alone (they stay internally
// paired, and nothing on the CRA path is over-aligned).

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC pairs a replaced operator new with the replacement delete, then warns
// that std::free does not match — but malloc/free is exactly the pair used.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace rit;

std::vector<double> make_asks(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<double> asks(n);
  for (auto& a : asks) a = rng.uniform_real_left_open(0.0, 10.0);
  return asks;
}

void BM_ConsensusRoundDown(benchmark::State& state) {
  rng::Rng rng(1);
  std::uint64_t count = 1;
  for (auto _ : state) {
    count = 1 + (count * 2862933555777941757ULL + 3037000493ULL) % (1 << 20);
    benchmark::DoNotOptimize(
        core::consensus_round_down(count, 0.37));
  }
}
BENCHMARK(BM_ConsensusRoundDown);

// Baseline vs workspace arms of the CRA round: identical draws and results
// (cra_test pins that); the heap_allocs_per_round counter is the point.
// The baseline's convenience overload rebuilds its order/chosen/sampling
// buffers every round; the workspace arm reuses them and must report ~0 at
// steady state.
void BM_CraRoundBaseline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto asks = make_asks(n, 2);
  rng::Rng rng(3);
  core::CraParams params;
  params.q = static_cast<std::uint32_t>(n / 8 + 1);
  params.m_i = static_cast<std::uint32_t>(n / 8 + 1);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_cra(asks, params, rng));
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_round"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(after - before) /
                static_cast<double>(state.iterations())
          : 0.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CraRoundBaseline)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CraRoundWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto asks = make_asks(n, 2);
  rng::Rng rng(3);
  core::CraParams params;
  params.q = static_cast<std::uint32_t>(n / 8 + 1);
  params.m_i = static_cast<std::uint32_t>(n / 8 + 1);
  core::CraWorkspace ws;
  core::CraOutcome out;
  // One warm-up round grows every scratch buffer to its high-water mark;
  // from then on the hot path must not touch the heap.
  core::run_cra(asks, params, rng, ws, out);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    core::run_cra(asks, params, rng, ws, out);
    benchmark::DoNotOptimize(out.num_winners);
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_round"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(after - before) /
                static_cast<double>(state.iterations())
          : 0.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CraRoundWorkspace)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Extract(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  rng::Rng rng(4);
  std::vector<core::Ask> asks;
  for (std::size_t j = 0; j < n; ++j) {
    asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(rng.uniform_index(10))},
        static_cast<std::uint32_t>(rng.uniform_int(1, 20)),
        rng.uniform_real_left_open(0.0, 10.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract(TaskType{3}, asks));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Extract)->Arg(10000)->Arg(100000);

struct PaymentFixtureData {
  tree::IncentiveTree tree = tree::IncentiveTree::root_only();
  std::vector<TaskType> types;
  std::vector<double> payments;
};

PaymentFixtureData make_payment_data(std::uint32_t n) {
  rng::Rng rng(5);
  PaymentFixtureData d;
  d.tree = tree::random_recursive_tree(n, 0.05, rng);
  d.types.resize(n);
  d.payments.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    d.types[i] = TaskType{static_cast<std::uint32_t>(rng.uniform_index(10))};
    d.payments[i] = rng.bernoulli(0.3) ? rng.uniform01() * 10.0 : 0.0;
  }
  return d;
}

void BM_PaymentPhaseFast(benchmark::State& state) {
  const auto d = make_payment_data(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::tree_payments(d.tree, d.types, d.payments, 0.5));
  }
}
BENCHMARK(BM_PaymentPhaseFast)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PaymentPhaseReference(benchmark::State& state) {
  const auto d = make_payment_data(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::tree_payments_reference(d.tree, d.types, d.payments, 0.5));
  }
}
BENCHMARK(BM_PaymentPhaseReference)->Arg(1000)->Arg(10000);

// Flat-workspace payment pass at {1, 2, 4} intra-trial threads. The output
// is bit-identical across the thread column (payment_test pins that); the
// heap_allocs_per_run counter must stay O(1) — a handful of bookkeeping
// allocations (thread spawns, type-erased loop bodies), never O(N).
void BM_PaymentPhaseWorkspace(benchmark::State& state) {
  const auto d = make_payment_data(static_cast<std::uint32_t>(state.range(0)));
  const auto threads = static_cast<unsigned>(state.range(1));
  core::PaymentWorkspace ws;
  std::vector<double> out;
  core::tree_payments_into(d.tree, d.types, d.payments, 0.5, threads, ws, out);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    core::tree_payments_into(d.tree, d.types, d.payments, 0.5, threads, ws,
                             out);
    benchmark::DoNotOptimize(out.data());
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_run"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(after - before) /
                static_cast<double>(state.iterations())
          : 0.0);
}
BENCHMARK(BM_PaymentPhaseWorkspace)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4});

void BM_BarabasiAlbert(benchmark::State& state) {
  rng::Rng rng(6);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::barabasi_albert(n, 3, rng));
  }
}
BENCHMARK(BM_BarabasiAlbert)->Arg(10000)->Arg(50000);

void BM_SpanningForest(benchmark::State& state) {
  rng::Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::barabasi_albert(n, 3, rng);
  tree::SpanningForestOptions opts;
  opts.seeds = {0, 1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::build_spanning_forest(g, opts));
  }
}
BENCHMARK(BM_SpanningForest)->Arg(10000)->Arg(50000);

void BM_FullRit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Rng setup(8);
  std::vector<core::Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(setup.uniform_index(10))},
        static_cast<std::uint32_t>(setup.uniform_int(1, 20)),
        setup.uniform_real_left_open(0.0, 10.0)});
  }
  const auto t = tree::random_recursive_tree(n, 0.05, setup);
  const core::Job job = core::Job::uniform(10, n / 20);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_rit(job, asks, t, cfg, rng));
  }
}
BENCHMARK(BM_FullRit)->Arg(5000)->Arg(20000);

// Same mechanism runs, but with per-thread scratch reuse (the path every
// sweep now takes). The delta against BM_FullRit is the allocator time the
// workspaces save per trial.
void BM_FullRitWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Rng setup(8);
  std::vector<core::Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(setup.uniform_index(10))},
        static_cast<std::uint32_t>(setup.uniform_int(1, 20)),
        setup.uniform_real_left_open(0.0, 10.0)});
  }
  const auto t = tree::random_recursive_tree(n, 0.05, setup);
  const core::Job job = core::Job::uniform(10, n / 20);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(9);
  core::RitWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_rit(job, asks, t, cfg, rng, ws));
  }
}
BENCHMARK(BM_FullRitWorkspace)->Arg(5000)->Arg(20000);

// The sweep engines' actual steady state: workspace AND result reuse via
// run_rit_into. After the warm-up run grows every buffer to its high-water
// mark, a whole mechanism run (auction rounds + extraction + payment pass)
// must perform ~0 heap allocations — the heap_allocs_per_trial counter is
// the acceptance number for the flat-SoA hot path.
void BM_FullRitSteadyState(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  rng::Rng setup(8);
  std::vector<core::Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(setup.uniform_index(10))},
        static_cast<std::uint32_t>(setup.uniform_int(1, 20)),
        setup.uniform_real_left_open(0.0, 10.0)});
  }
  const auto t = tree::random_recursive_tree(n, 0.05, setup);
  const core::Job job = core::Job::uniform(10, n / 20);
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(9);
  core::RitWorkspace ws;
  core::RitResult out;
  core::run_rit_into(job, asks, t, cfg, rng, ws, out);
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    core::run_rit_into(job, asks, t, cfg, rng, ws, out);
    benchmark::DoNotOptimize(out.payment.data());
  }
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  state.counters["heap_allocs_per_trial"] = benchmark::Counter(
      state.iterations() > 0
          ? static_cast<double>(after - before) /
                static_cast<double>(state.iterations())
          : 0.0);
}
BENCHMARK(BM_FullRitSteadyState)->Arg(5000)->Arg(20000);

// Spanning-forest wave scan at {1, 4} intra-trial threads over the same
// graph: output is bit-identical (scale_test pins it); the time column
// shows what the parallel frontier scan buys.
void BM_SpanningForestThreads(benchmark::State& state) {
  rng::Rng rng(7);
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::barabasi_albert(n, 3, rng);
  tree::SpanningForestOptions opts;
  opts.seeds = {0, 1, 2, 3};
  opts.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree::build_spanning_forest(g, opts));
  }
}
BENCHMARK(BM_SpanningForestThreads)->Args({50000, 1})->Args({50000, 4});

// --- Tracer overhead -------------------------------------------------------
// A fixed arithmetic payload (~100-200 ns) bracketed three ways. Comparing
// BM_TracerIdleSpan against BM_TracerBaseline measures the cost of an
// instrumented-but-idle span (one relaxed atomic load): the <2% overhead
// guarantee. BM_TracerActiveSpan shows the full recording cost.

double overhead_payload(std::uint64_t& x) {
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) {
    x = x * 2862933555777941757ULL + 3037000493ULL;
    acc += static_cast<double>(x >> 40);
  }
  return acc;
}

void BM_TracerBaseline(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overhead_payload(x));
  }
}
BENCHMARK(BM_TracerBaseline);

void BM_TracerIdleSpan(benchmark::State& state) {
  const bool was_active = rit::obs::tracing_active();
  rit::obs::stop_tracing();
  std::uint64_t x = 1;
  for (auto _ : state) {
    RIT_TRACE_SPAN("micro.payload");
    benchmark::DoNotOptimize(overhead_payload(x));
  }
  if (was_active) rit::obs::detail::g_active.store(true);
}
BENCHMARK(BM_TracerIdleSpan);

void BM_TracerActiveSpan(benchmark::State& state) {
  const bool was_active = rit::obs::tracing_active();
  rit::obs::start_tracing();
  std::uint64_t x = 1;
  std::uint64_t n = 0;
  for (auto _ : state) {
    RIT_TRACE_SPAN("micro.payload");
    benchmark::DoNotOptimize(overhead_payload(x));
    // Recycle the buffer well before the capacity cap so the benchmark keeps
    // measuring the record path, not the overflow-drop path.
    if (++n % 65536 == 0) rit::obs::clear_trace();
  }
  rit::obs::clear_trace();
  if (!was_active) rit::obs::stop_tracing();
}
BENCHMARK(BM_TracerActiveSpan);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags

  rit::bench::BenchOptions opts;
  opts.name = "micro";
  opts.summary_path = "bench_results/BENCH_micro.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      opts.trace_path = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      opts.metrics_path = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--json=", 0) == 0) {
      opts.summary_path = arg.substr(std::strlen("--json="));
      if (opts.summary_path == "none") opts.summary_path.clear();
    } else {
      std::fprintf(stderr, "unrecognized flag: %s\n", arg.c_str());
      return 1;
    }
  }

  opts.start_ns = rit::obs::trace_now_ns();
  if (!opts.trace_path.empty()) rit::obs::start_tracing();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rit::bench::finish(opts);
  return 0;
}
