#include "bench_support.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "cli/svg_chart.h"
#include "common/check.h"

namespace rit::bench {

BenchOptions parse_options(int argc, char** argv, const std::string& name,
                           std::uint64_t default_trials) {
  cli::Args args(argc, argv);
  BenchOptions opts;
  opts.trials = args.get_u64("trials", default_trials);
  opts.scale = args.get_double("scale", 10.0);
  opts.points = static_cast<std::uint32_t>(args.get_u64("points", 5));
  opts.seed = args.get_u64("seed", 42);
  opts.graph = sim::parse_graph_kind(args.get_string("graph", "ba"));
  opts.theoretical = args.get_bool("theoretical", false);
  opts.paper_ratio = args.get_bool("paper-ratio", false);
  opts.paper_kmax = args.get_bool("paper-kmax", false);
  const std::string csv =
      args.get_string("csv", "bench_results/" + name + ".csv");
  opts.csv_path = csv == "none" ? "" : csv;
  args.finish();
  RIT_CHECK_MSG(opts.scale >= 1.0, "--scale must be >= 1");
  RIT_CHECK_MSG(opts.points >= 2, "--points must be >= 2");
  RIT_CHECK_MSG(opts.trials >= 1, "--trials must be >= 1");
  return opts;
}

void apply_options(const BenchOptions& opts, sim::Scenario& scenario) {
  scenario.graph = opts.graph;
  scenario.seed = opts.seed;
  scenario.mechanism.round_budget_policy =
      opts.theoretical ? core::RoundBudgetPolicy::kTheoretical
                       : core::RoundBudgetPolicy::kRunToCompletion;
}

std::uint32_t scaled(std::uint64_t value, double scale,
                     std::uint32_t min_value) {
  const auto v = static_cast<std::uint32_t>(static_cast<double>(value) / scale);
  return std::max(min_value, v);
}

std::vector<std::uint32_t> linspace(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points) {
  RIT_CHECK(lo <= hi);
  std::vector<std::uint32_t> out;
  out.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 0.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    out.push_back(lo + static_cast<std::uint32_t>(
                           t * static_cast<double>(hi - lo) + 0.5));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void emit(const std::string& title, const BenchOptions& opts,
          const std::vector<std::string>& header,
          const std::vector<std::vector<double>>& rows, int precision) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(trials=" << opts.trials << " scale=1/" << opts.scale
            << " graph=" << sim::to_string(opts.graph)
            << (opts.theoretical ? " budget=theoretical"
                                 : " budget=run-to-completion")
            << ")\n";
  cli::Table table(header);
  for (const auto& row : rows) table.add_numeric_row(row, precision);
  table.print(std::cout);
  if (!opts.csv_path.empty()) {
    const std::filesystem::path p(opts.csv_path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    cli::CsvWriter csv(opts.csv_path, header);
    for (const auto& row : rows) csv.add_numeric_row(row, 6);
    std::cout << "csv: " << opts.csv_path << "\n";
  }
  std::cout << "\n";
}

void emit_svg(const std::string& title, const BenchOptions& opts,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows,
              const std::vector<std::size_t>& series_columns) {
  if (opts.csv_path.empty() || rows.empty()) return;
  std::vector<cli::Series> series;
  for (std::size_t c : series_columns) {
    RIT_CHECK_MSG(c > 0 && c < header.size(),
                  "series column " << c << " out of range");
    cli::Series s;
    s.label = header[c];
    for (const auto& row : rows) s.points.emplace_back(row[0], row[c]);
    series.push_back(std::move(s));
  }
  cli::ChartOptions chart;
  chart.title = title;
  chart.x_label = header[0];
  chart.y_label = series_columns.size() == 1 ? header[series_columns[0]] : "";
  std::filesystem::path p(opts.csv_path);
  p.replace_extension(".svg");
  cli::write_line_chart(p.string(), series, chart);
  std::cout << "svg: " << p.string() << "\n\n";
}

}  // namespace rit::bench
