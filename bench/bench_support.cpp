#include "bench_support.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>

#include "cli/svg_chart.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/parallel.h"
#include "common/format_util.h"
#include "common/log.h"
#include "common/num_io.h"
#include "obs/history.h"
#include "obs/obs.h"
#include "obs/perf_counters.h"
#include "obs/trace_export.h"
#include "platform/supervisor.h"
#include "sim/runner.h"

namespace rit::bench {

BenchOptions parse_options(int argc, char** argv, const std::string& name,
                           std::uint64_t default_trials) {
  cli::Args args(argc, argv);
  BenchOptions opts;
  opts.name = name;
  opts.trials = args.get_u64("trials", default_trials);
  opts.scale = args.get_double("scale", 10.0);
  opts.points = static_cast<std::uint32_t>(args.get_u64("points", 5));
  opts.seed = args.get_u64("seed", 42);
  opts.graph = sim::parse_graph_kind(args.get_string("graph", "ba"));
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  opts.intra_threads =
      static_cast<unsigned>(args.get_u64("intra-threads", 1));
  opts.theoretical = args.get_bool("theoretical", false);
  opts.paper_ratio = args.get_bool("paper-ratio", false);
  opts.paper_kmax = args.get_bool("paper-kmax", false);
  const std::string csv =
      args.get_string("csv", "bench_results/" + name + ".csv");
  opts.csv_path = csv == "none" ? "" : csv;
  opts.trace_path = args.get_string("trace-out", "");
  opts.metrics_path = args.get_string("metrics-out", "");
  opts.max_trial_failures = args.get_u64("max-trial-failures", 0);
  opts.trial_timeout_ms = args.get_double("trial-timeout-ms", 0.0);
  opts.checkpoint_path = args.get_string("checkpoint", "");
  opts.checkpoint_every = args.get_u64("checkpoint-every", 0);
  opts.resume = args.get_bool("resume", false);
  opts.supervised = args.get_bool("supervised", false);
  opts.shards = static_cast<unsigned>(args.get_u64("shards", 0));
  opts.shard_mem_mb = args.get_u64("shard-mem-mb", 0);
  opts.shard_cpu_s = args.get_u64("shard-cpu-s", 0);
  opts.shard_retries =
      static_cast<unsigned>(args.get_u64("shard-retries", 2));
  opts.heartbeat_timeout_ms = args.get_u64("heartbeat-timeout-ms", 0);
  const std::string summary =
      args.get_string("json", "bench_results/BENCH_" + name + ".json");
  opts.summary_path = summary == "none" ? "" : summary;
  // Bare `--history-out` (no value) parses as "true": use the ledger's
  // conventional location.
  std::string history = args.get_string("history-out", "none");
  if (history == "true") history = "bench/history/" + name + ".jsonl";
  opts.history_path = history == "none" ? "" : history;
  opts.perf_counters = args.get_bool("perf-counters", false);
  if (args.get_bool("json-logs", false)) {
    log::set_format(log::Format::kJson);
  }
  // Benches are interactive tools: surface info-level progress (the default
  // sink level is warn, tuned for library use).
  log::set_level(log::Level::kInfo);
  args.finish();
  RIT_CHECK_MSG(opts.scale >= 1.0, "--scale must be >= 1");
  RIT_CHECK_MSG(opts.points >= 2, "--points must be >= 2");
  RIT_CHECK_MSG(opts.trials >= 1, "--trials must be >= 1");
  RIT_CHECK_MSG(opts.checkpoint_path.empty() ? !opts.resume : true,
                "--resume requires --checkpoint=PATH");
  RIT_CHECK_MSG(opts.checkpoint_path.empty() ? opts.checkpoint_every == 0
                                             : true,
                "--checkpoint-every requires --checkpoint=PATH");
  RIT_CHECK_MSG(opts.trial_timeout_ms >= 0.0,
                "--trial-timeout-ms must be >= 0");
  RIT_CHECK_MSG(opts.supervised ||
                    (opts.shards == 0 && opts.shard_mem_mb == 0 &&
                     opts.shard_cpu_s == 0 && opts.heartbeat_timeout_ms == 0),
                "--shards/--shard-mem-mb/--shard-cpu-s/"
                "--heartbeat-timeout-ms require --supervised");

  // Record every span from here on; finish() turns this into the per-phase
  // breakdown. When the build has RIT_OBS_ENABLED=0 the trace simply stays
  // empty and finish() reports that instrumentation is compiled out.
  obs::start_tracing();
  // Counter profiling must be armed before any worker thread exists so the
  // inherited run-level set covers them. Unavailability is fine: spans just
  // skip the sampling and the ledger marks the counters absent.
  if (opts.perf_counters) obs::start_perf_counters();
  opts.start_ns = obs::trace_now_ns();
  return opts;
}

void apply_options(const BenchOptions& opts, sim::Scenario& scenario) {
  scenario.graph = opts.graph;
  scenario.seed = opts.seed;
  scenario.intra_threads = opts.intra_threads;
  scenario.mechanism.intra_threads = opts.intra_threads;
  scenario.mechanism.round_budget_policy =
      opts.theoretical ? core::RoundBudgetPolicy::kTheoretical
                       : core::RoundBudgetPolicy::kRunToCompletion;
}

std::uint32_t scaled(std::uint64_t value, double scale,
                     std::uint32_t min_value) {
  const auto v = static_cast<std::uint32_t>(static_cast<double>(value) / scale);
  return std::max(min_value, v);
}

std::vector<std::uint32_t> linspace(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points) {
  RIT_CHECK(lo <= hi);
  std::vector<std::uint32_t> out;
  out.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 0.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    out.push_back(lo + static_cast<std::uint32_t>(
                           t * static_cast<double>(hi - lo) + 0.5));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// Hash of every flag that shapes what a sweep computes. Binds a checkpoint
/// file to this bench + configuration: resuming under any other flag set
/// would silently mix incompatible partial results, so the session refuses.
std::uint64_t sweep_config_hash(const BenchOptions& opts) {
  std::string fp = opts.name;
  const auto field = [&fp](const std::string& v) {
    fp += '|';
    fp += v;
  };
  field(format_u64(opts.trials));
  field(format_double(opts.scale, 6));
  field(format_u64(opts.points));
  field(sim::to_string(opts.graph));
  field(opts.theoretical ? "theoretical" : "run-to-completion");
  field(opts.paper_ratio ? "paper-ratio" : "-");
  field(opts.paper_kmax ? "paper-kmax" : "-");
  field(format_u64(opts.max_trial_failures));
  field(format_double(opts.trial_timeout_ms, 6));
  // --threads and --intra-threads are deliberately NOT hashed: both knobs
  // are bit-identical by construction (fixed partition, fixed merge order),
  // so a checkpoint written at one setting resumes correctly at another.
  return fnv1a64(fp);
}

}  // namespace

sim::AggregateMetrics run_point(
    const BenchOptions& opts, const sim::Scenario& scenario,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress) {
  const bool default_policy =
      opts.max_trial_failures == 0 && opts.trial_timeout_ms == 0.0;
  if (!opts.supervised && opts.checkpoint_path.empty() && default_policy) {
    // The historical path, byte-identical (including the exact serial code
    // for one thread).
    return sim::run_many_parallel(scenario, opts.trials, opts.threads,
                                  progress);
  }
  SweepState& sweep = *opts.sweep;
  // Supervised runs partition by shard instead of thread; both knobs bind
  // the checkpoint the same way (partition width), so a checkpoint written
  // in-process at --threads=K resumes supervised at --shards=K and vice
  // versa — the partition, fold order, and merge order are identical.
  const unsigned resolved =
      opts.supervised ? rit::resolve_threads(opts.shards, opts.trials)
                      : rit::resolve_threads(opts.threads, opts.trials);
  if (!opts.checkpoint_path.empty() && !sweep.session) {
    sim::CheckpointSession::Params p;
    p.path = opts.checkpoint_path;
    p.config_hash = sweep_config_hash(opts);
    p.seed = opts.seed;
    p.threads = resolved;
    p.trials = opts.trials;
    p.every = opts.checkpoint_every;
    p.resume = opts.resume;
    sweep.session = std::make_unique<sim::CheckpointSession>(std::move(p));
  }
  sim::GuardPolicy policy;
  policy.max_trial_failures = opts.max_trial_failures;
  policy.trial_timeout_ms = opts.trial_timeout_ms;
  sim::GuardedResult r;
  if (opts.supervised) {
    platform::SupervisorOptions sup;
    sup.shards = opts.shards;
    sup.shard_mem_mb = opts.shard_mem_mb;
    sup.shard_cpu_s = opts.shard_cpu_s;
    sup.shard_retries = opts.shard_retries;
    sup.heartbeat_timeout_ms = opts.heartbeat_timeout_ms;
    sup.checkpoint_path = opts.checkpoint_path;
    sup.checkpoint_every = opts.checkpoint_every;
    sup.resume = opts.resume;
    sup.config_hash = sweep_config_hash(opts);
    sup.seed = opts.seed;
    r = platform::run_many_supervised(scenario, opts.trials, sup, policy,
                                      sweep.session.get(), sweep.next_point,
                                      progress);
  } else {
    r = sim::run_many_guarded(scenario, opts.trials, resolved, policy,
                              sweep.session.get(), sweep.next_point,
                              progress);
  }
  ++sweep.next_point;
  sweep.faults.merge(r.faults);
  return r.metrics;
}

void emit(const std::string& title, const BenchOptions& opts,
          const std::vector<std::string>& header,
          const std::vector<std::vector<double>>& rows, int precision) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(trials=" << opts.trials << " scale=1/" << opts.scale
            << " graph=" << sim::to_string(opts.graph)
            << (opts.theoretical ? " budget=theoretical"
                                 : " budget=run-to-completion")
            << " threads=" << rit::resolve_threads(opts.threads, opts.trials);
  if (opts.supervised) {
    std::cout << " supervised shards="
              << platform::resolve_shards(opts.shards, opts.trials);
  }
  std::cout << ")\n";
  cli::Table table(header);
  for (const auto& row : rows) table.add_numeric_row(row, precision);
  table.print(std::cout);
  if (!opts.csv_path.empty()) {
    cli::CsvWriter csv(opts.csv_path, header);
    for (const auto& row : rows) csv.add_numeric_row(row, 6);
    csv.close();  // atomic commit; throws (rather than logs) on failure
    std::cout << "csv: " << opts.csv_path << "\n";
  }
  std::cout << "\n";
}

void emit_svg(const std::string& title, const BenchOptions& opts,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows,
              const std::vector<std::size_t>& series_columns) {
  if (opts.csv_path.empty() || rows.empty()) return;
  std::vector<cli::Series> series;
  for (std::size_t c : series_columns) {
    RIT_CHECK_MSG(c > 0 && c < header.size(),
                  "series column " << c << " out of range");
    cli::Series s;
    s.label = header[c];
    for (const auto& row : rows) s.points.emplace_back(row[0], row[c]);
    series.push_back(std::move(s));
  }
  cli::ChartOptions chart;
  chart.title = title;
  chart.x_label = header[0];
  chart.y_label = series_columns.size() == 1 ? header[series_columns[0]] : "";
  std::filesystem::path p(opts.csv_path);
  p.replace_extension(".svg");
  cli::write_line_chart(p.string(), series, chart);
  std::cout << "svg: " << p.string() << "\n\n";
}

namespace {

void write_summary_json(const BenchOptions& opts, double wall_ms,
                        const std::vector<obs::PhaseStat>& phases,
                        const obs::MetricsSnapshot& metrics) {
  const std::filesystem::path p(opts.summary_path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(opts.summary_path);
  RIT_CHECK_MSG(out.good(),
                "cannot open summary output file " << opts.summary_path);
  out << "{\n";
  out << "  \"bench\": \"" << json_escape(opts.name) << "\",\n";
  out << "  \"options\": {\"trials\": " << opts.trials
      << ", \"scale\": " << opts.scale << ", \"points\": " << opts.points
      << ", \"seed\": " << opts.seed << ", \"graph\": \""
      << sim::to_string(opts.graph) << "\", \"budget\": \""
      << (opts.theoretical ? "theoretical" : "run-to-completion")
      << "\", \"threads\": " << opts.threads << ", \"threads_resolved\": "
      << rit::resolve_threads(opts.threads, opts.trials)
      << ", \"intra_threads\": " << opts.intra_threads << "},\n";
  out << "  \"wall_ms\": " << format_double(wall_ms, 3) << ",\n";
  out << "  \"dropped_spans\": " << obs::dropped_spans() << ",\n";
  out << "  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const obs::PhaseStat& ph = phases[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(ph.name)
        << "\", \"count\": " << ph.count << ", \"total_ms\": "
        << format_double(ph.total_ms, 3) << ", \"self_ms\": "
        << format_double(ph.self_ms, 3) << "}";
  }
  out << (phases.empty() ? "],\n" : "\n  ],\n");
  out << "  \"metrics\": " << metrics.to_json();
  out << "}\n";
}

}  // namespace

void finish(const BenchOptions& opts) {
  const double wall_ms =
      static_cast<double>(obs::trace_now_ns() - opts.start_ns) / 1e6;
  obs::stop_tracing();
  if (opts.perf_counters) obs::stop_perf_counters();
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  const std::vector<obs::PhaseStat> phases = obs::phase_breakdown(events);
  const obs::MetricsSnapshot metrics = obs::Registry::global().snapshot();
  const obs::PerfAvailability perf_avail = obs::perf_availability();
  const std::vector<obs::PerfPhaseStat> perf_phases =
      opts.perf_counters ? obs::collect_perf_phase_stats()
                         : std::vector<obs::PerfPhaseStat>{};

  if (phases.empty()) {
    std::cout << "(no spans recorded"
#if !RIT_OBS_ENABLED
              << "; observability compiled out (RIT_OBS_ENABLED=0)"
#endif
              << ")\n";
  } else {
    double instrumented_ms = 0.0;
    for (const obs::PhaseStat& ph : phases) instrumented_ms += ph.self_ms;
    std::cout << "=== per-phase breakdown — " << opts.name << " ===\n";
    cli::Table table({"phase", "count", "total_ms", "self_ms", "self_%"});
    for (const obs::PhaseStat& ph : phases) {
      table.add_row({ph.name, format_u64(ph.count),
                     format_double(ph.total_ms, 3),
                     format_double(ph.self_ms, 3),
                     format_double(instrumented_ms > 0.0
                                       ? 100.0 * ph.self_ms / instrumented_ms
                                       : 0.0,
                                   1)});
    }
    table.print(std::cout);
    std::cout << "phases sum to " << format_double(instrumented_ms, 1)
              << " ms of " << format_double(wall_ms, 1)
              << " ms end-to-end ("
              << format_double(wall_ms > 0.0
                                   ? 100.0 * instrumented_ms / wall_ms
                                   : 0.0,
                               1)
              << "% coverage)";
    if (obs::dropped_spans() > 0) {
      std::cout << "; " << obs::dropped_spans()
                << " spans dropped (buffer full — raise "
                   "obs::set_trace_capacity)";
    }
    std::cout << "\n";
  }

  if (opts.perf_counters) {
    if (!perf_avail.any()) {
      std::cout << "(perf counters requested but unavailable: "
                   "perf_event_open unpermitted and no alloc hook — "
                   "timings only)\n";
    } else if (!perf_phases.empty()) {
      const auto cell = [](bool avail, std::uint64_t v) {
        return avail ? format_with_commas(static_cast<long long>(v))
                     : std::string("-");
      };
      std::cout << "=== per-phase counters — " << opts.name << " ===\n";
      cli::Table table({"phase", "spans", "cycles", "instructions", "ipc",
                        "cache_miss%", "branch_miss", "allocs"});
      for (const obs::PerfPhaseStat& pp : perf_phases) {
        const std::uint64_t cycles = pp.totals[obs::kPerfCycles];
        const std::uint64_t instr = pp.totals[obs::kPerfInstructions];
        const std::uint64_t refs = pp.totals[obs::kPerfCacheRefs];
        const std::uint64_t misses = pp.totals[obs::kPerfCacheMisses];
        const bool ipc_ok = perf_avail.counter[obs::kPerfCycles] &&
                            perf_avail.counter[obs::kPerfInstructions] &&
                            cycles > 0;
        const bool miss_ok = perf_avail.counter[obs::kPerfCacheRefs] &&
                             perf_avail.counter[obs::kPerfCacheMisses] &&
                             refs > 0;
        table.add_row(
            {pp.name, format_u64(pp.count),
             cell(perf_avail.counter[obs::kPerfCycles], cycles),
             cell(perf_avail.counter[obs::kPerfInstructions], instr),
             ipc_ok ? format_double(static_cast<double>(instr) /
                                        static_cast<double>(cycles),
                                    2)
                    : "-",
             miss_ok ? format_double(100.0 * static_cast<double>(misses) /
                                         static_cast<double>(refs),
                                     1)
                     : "-",
             cell(perf_avail.counter[obs::kPerfBranchMisses],
                  pp.totals[obs::kPerfBranchMisses]),
             cell(perf_avail.alloc_hook, pp.alloc_count)});
      }
      table.print(std::cout);
    }
  }

  // Quarantined-fault report: silent by default (no faults → no output, so
  // default runs stay byte-identical), loud when anything was contained.
  const sim::FaultLedger& faults = opts.sweep->faults;
  if (!faults.empty()) {
    std::cout << "=== quarantined faults — " << opts.name << " ===\n"
              << faults.markdown();
    if (!opts.csv_path.empty()) {
      std::filesystem::path p(opts.csv_path);
      p.replace_extension(".faults.csv");
      cli::CsvWriter csv(p.string(),
                         {"trial", "seed", "kind", "phase", "reason"});
      for (const sim::TrialFault& f : faults.sorted_by_trial()) {
        csv.add_row({format_u64(f.trial), format_u64(f.seed),
                     sim::to_string(f.kind), f.phase, f.reason});
      }
      csv.close();
      std::cout << "faults csv: " << p.string() << "\n";
    }
  }

  if (!opts.trace_path.empty()) {
    obs::write_chrome_trace(opts.trace_path, events);
    std::cout << "trace: " << opts.trace_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!opts.metrics_path.empty()) {
    obs::write_metrics_json(opts.metrics_path, metrics);
    std::cout << "metrics: " << opts.metrics_path << "\n";
  }
  if (!opts.summary_path.empty()) {
    write_summary_json(opts, wall_ms, phases, metrics);
    std::cout << "summary: " << opts.summary_path << "\n";
  }
  if (!opts.history_path.empty()) {
    obs::HistoryRecord rec;
    rec.bench = opts.name;
    rec.env = obs::collect_env_fingerprint();
    rec.threads = static_cast<std::uint32_t>(
        rit::resolve_threads(opts.threads, opts.trials));
    rec.trials = opts.trials;
    rec.scale = opts.scale;
    rec.points = opts.points;
    rec.wall_ms = wall_ms;
    std::map<std::string, const obs::PerfPhaseStat*> perf_by_name;
    for (const obs::PerfPhaseStat& pp : perf_phases) {
      perf_by_name[pp.name] = &pp;
    }
    for (const obs::PhaseStat& ph : phases) {
      obs::HistoryPhase hp;
      hp.name = ph.name;
      hp.count = ph.count;
      hp.total_ms = ph.total_ms;
      hp.self_ms = ph.self_ms;
      // Absence-means-unmeasured: only counters that actually opened are
      // recorded, so a no-perf container never writes fake zeros.
      const auto it = perf_by_name.find(ph.name);
      if (it != perf_by_name.end()) {
        for (std::size_t i = 0; i < obs::kPerfNumCounters; ++i) {
          if (perf_avail.counter[i]) {
            hp.counters.emplace_back(obs::perf_counter_name(i),
                                     it->second->totals[i]);
          }
        }
        if (perf_avail.alloc_hook) {
          hp.counters.emplace_back("alloc_count", it->second->alloc_count);
          hp.counters.emplace_back("alloc_bytes", it->second->alloc_bytes);
        }
      }
      rec.phases.push_back(std::move(hp));
    }
    if (opts.perf_counters) {
      const obs::PerfRunTotals rt = obs::perf_run_totals();
      for (std::size_t i = 0; i < obs::kPerfNumCounters; ++i) {
        if (perf_avail.counter[i]) {
          rec.run_counters.emplace_back(obs::perf_counter_name(i),
                                        rt.totals[i]);
        }
      }
      if (perf_avail.alloc_hook) {
        rec.run_counters.emplace_back("alloc_count", rt.alloc_count);
        rec.run_counters.emplace_back("alloc_bytes", rt.alloc_bytes);
      }
    }
    for (const auto& [stat_name, s] : metrics.stats) {
      if (s.count() > 0) rec.stats[stat_name] = obs::HistoryStat::from(s);
    }
    obs::append_history(opts.history_path, rec);
    std::cout << "history: " << opts.history_path << " (+1 record)\n";
  }
  std::cout << "\n";
}

}  // namespace rit::bench
