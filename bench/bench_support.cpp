#include "bench_support.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "cli/svg_chart.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/format_util.h"
#include "common/log.h"
#include "obs/obs.h"
#include "obs/trace_export.h"

namespace rit::bench {

BenchOptions parse_options(int argc, char** argv, const std::string& name,
                           std::uint64_t default_trials) {
  cli::Args args(argc, argv);
  BenchOptions opts;
  opts.name = name;
  opts.trials = args.get_u64("trials", default_trials);
  opts.scale = args.get_double("scale", 10.0);
  opts.points = static_cast<std::uint32_t>(args.get_u64("points", 5));
  opts.seed = args.get_u64("seed", 42);
  opts.graph = sim::parse_graph_kind(args.get_string("graph", "ba"));
  opts.threads = static_cast<unsigned>(args.get_u64("threads", 0));
  opts.theoretical = args.get_bool("theoretical", false);
  opts.paper_ratio = args.get_bool("paper-ratio", false);
  opts.paper_kmax = args.get_bool("paper-kmax", false);
  const std::string csv =
      args.get_string("csv", "bench_results/" + name + ".csv");
  opts.csv_path = csv == "none" ? "" : csv;
  opts.trace_path = args.get_string("trace-out", "");
  opts.metrics_path = args.get_string("metrics-out", "");
  const std::string summary =
      args.get_string("json", "bench_results/BENCH_" + name + ".json");
  opts.summary_path = summary == "none" ? "" : summary;
  if (args.get_bool("json-logs", false)) {
    log::set_format(log::Format::kJson);
  }
  // Benches are interactive tools: surface info-level progress (the default
  // sink level is warn, tuned for library use).
  log::set_level(log::Level::kInfo);
  args.finish();
  RIT_CHECK_MSG(opts.scale >= 1.0, "--scale must be >= 1");
  RIT_CHECK_MSG(opts.points >= 2, "--points must be >= 2");
  RIT_CHECK_MSG(opts.trials >= 1, "--trials must be >= 1");

  // Record every span from here on; finish() turns this into the per-phase
  // breakdown. When the build has RIT_OBS_ENABLED=0 the trace simply stays
  // empty and finish() reports that instrumentation is compiled out.
  obs::start_tracing();
  opts.start_ns = obs::trace_now_ns();
  return opts;
}

void apply_options(const BenchOptions& opts, sim::Scenario& scenario) {
  scenario.graph = opts.graph;
  scenario.seed = opts.seed;
  scenario.mechanism.round_budget_policy =
      opts.theoretical ? core::RoundBudgetPolicy::kTheoretical
                       : core::RoundBudgetPolicy::kRunToCompletion;
}

std::uint32_t scaled(std::uint64_t value, double scale,
                     std::uint32_t min_value) {
  const auto v = static_cast<std::uint32_t>(static_cast<double>(value) / scale);
  return std::max(min_value, v);
}

std::vector<std::uint32_t> linspace(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points) {
  RIT_CHECK(lo <= hi);
  std::vector<std::uint32_t> out;
  out.reserve(points);
  for (std::uint32_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 0.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    out.push_back(lo + static_cast<std::uint32_t>(
                           t * static_cast<double>(hi - lo) + 0.5));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void emit(const std::string& title, const BenchOptions& opts,
          const std::vector<std::string>& header,
          const std::vector<std::vector<double>>& rows, int precision) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(trials=" << opts.trials << " scale=1/" << opts.scale
            << " graph=" << sim::to_string(opts.graph)
            << (opts.theoretical ? " budget=theoretical"
                                 : " budget=run-to-completion")
            << " threads=" << rit::resolve_threads(opts.threads, opts.trials)
            << ")\n";
  cli::Table table(header);
  for (const auto& row : rows) table.add_numeric_row(row, precision);
  table.print(std::cout);
  if (!opts.csv_path.empty()) {
    const std::filesystem::path p(opts.csv_path);
    if (p.has_parent_path()) {
      std::error_code ec;
      std::filesystem::create_directories(p.parent_path(), ec);
    }
    cli::CsvWriter csv(opts.csv_path, header);
    for (const auto& row : rows) csv.add_numeric_row(row, 6);
    std::cout << "csv: " << opts.csv_path << "\n";
  }
  std::cout << "\n";
}

void emit_svg(const std::string& title, const BenchOptions& opts,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows,
              const std::vector<std::size_t>& series_columns) {
  if (opts.csv_path.empty() || rows.empty()) return;
  std::vector<cli::Series> series;
  for (std::size_t c : series_columns) {
    RIT_CHECK_MSG(c > 0 && c < header.size(),
                  "series column " << c << " out of range");
    cli::Series s;
    s.label = header[c];
    for (const auto& row : rows) s.points.emplace_back(row[0], row[c]);
    series.push_back(std::move(s));
  }
  cli::ChartOptions chart;
  chart.title = title;
  chart.x_label = header[0];
  chart.y_label = series_columns.size() == 1 ? header[series_columns[0]] : "";
  std::filesystem::path p(opts.csv_path);
  p.replace_extension(".svg");
  cli::write_line_chart(p.string(), series, chart);
  std::cout << "svg: " << p.string() << "\n\n";
}

namespace {

void write_summary_json(const BenchOptions& opts, double wall_ms,
                        const std::vector<obs::PhaseStat>& phases,
                        const obs::MetricsSnapshot& metrics) {
  const std::filesystem::path p(opts.summary_path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(opts.summary_path);
  RIT_CHECK_MSG(out.good(),
                "cannot open summary output file " << opts.summary_path);
  out << "{\n";
  out << "  \"bench\": \"" << json_escape(opts.name) << "\",\n";
  out << "  \"options\": {\"trials\": " << opts.trials
      << ", \"scale\": " << opts.scale << ", \"points\": " << opts.points
      << ", \"seed\": " << opts.seed << ", \"graph\": \""
      << sim::to_string(opts.graph) << "\", \"budget\": \""
      << (opts.theoretical ? "theoretical" : "run-to-completion")
      << "\", \"threads\": " << opts.threads << ", \"threads_resolved\": "
      << rit::resolve_threads(opts.threads, opts.trials) << "},\n";
  out << "  \"wall_ms\": " << format_double(wall_ms, 3) << ",\n";
  out << "  \"dropped_spans\": " << obs::dropped_spans() << ",\n";
  out << "  \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const obs::PhaseStat& ph = phases[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"name\": \"" << json_escape(ph.name)
        << "\", \"count\": " << ph.count << ", \"total_ms\": "
        << format_double(ph.total_ms, 3) << ", \"self_ms\": "
        << format_double(ph.self_ms, 3) << "}";
  }
  out << (phases.empty() ? "],\n" : "\n  ],\n");
  out << "  \"metrics\": " << metrics.to_json();
  out << "}\n";
}

}  // namespace

void finish(const BenchOptions& opts) {
  const double wall_ms =
      static_cast<double>(obs::trace_now_ns() - opts.start_ns) / 1e6;
  obs::stop_tracing();
  const std::vector<obs::TraceEvent> events = obs::collect_trace();
  const std::vector<obs::PhaseStat> phases = obs::phase_breakdown(events);
  const obs::MetricsSnapshot metrics = obs::Registry::global().snapshot();

  if (phases.empty()) {
    std::cout << "(no spans recorded"
#if !RIT_OBS_ENABLED
              << "; observability compiled out (RIT_OBS_ENABLED=0)"
#endif
              << ")\n";
  } else {
    double instrumented_ms = 0.0;
    for (const obs::PhaseStat& ph : phases) instrumented_ms += ph.self_ms;
    std::cout << "=== per-phase breakdown — " << opts.name << " ===\n";
    cli::Table table({"phase", "count", "total_ms", "self_ms", "self_%"});
    for (const obs::PhaseStat& ph : phases) {
      table.add_row({ph.name, std::to_string(ph.count),
                     format_double(ph.total_ms, 3),
                     format_double(ph.self_ms, 3),
                     format_double(instrumented_ms > 0.0
                                       ? 100.0 * ph.self_ms / instrumented_ms
                                       : 0.0,
                                   1)});
    }
    table.print(std::cout);
    std::cout << "phases sum to " << format_double(instrumented_ms, 1)
              << " ms of " << format_double(wall_ms, 1)
              << " ms end-to-end ("
              << format_double(wall_ms > 0.0
                                   ? 100.0 * instrumented_ms / wall_ms
                                   : 0.0,
                               1)
              << "% coverage)";
    if (obs::dropped_spans() > 0) {
      std::cout << "; " << obs::dropped_spans()
                << " spans dropped (buffer full — raise "
                   "obs::set_trace_capacity)";
    }
    std::cout << "\n";
  }

  if (!opts.trace_path.empty()) {
    obs::write_chrome_trace(opts.trace_path, events);
    std::cout << "trace: " << opts.trace_path
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!opts.metrics_path.empty()) {
    obs::write_metrics_json(opts.metrics_path, metrics);
    std::cout << "metrics: " << opts.metrics_path << "\n";
  }
  if (!opts.summary_path.empty()) {
    write_summary_json(opts, wall_ms, phases, metrics);
    std::cout << "summary: " << opts.summary_path << "\n";
  }
  std::cout << "\n";
}

}  // namespace rit::bench
