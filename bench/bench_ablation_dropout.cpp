// Ablation: user dropout between solicitation and the auction.
//
// Recruited users vanish (uninstall, leave the area) before submitting
// asks; their recruits splice up to the closest surviving ancestor
// (sim/failures.h). This bench sweeps the dropout rate and reports how the
// mechanism degrades: allocation success, average utility among survivors,
// and the solicitation premium (which shrinks as recruiters lose subtrees).
#include <vector>

#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/failures.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_dropout", 5);

  sim::Scenario s;
  s.num_users = scaled(30000, opts.scale, 300);
  s.num_types = 5;
  s.tasks_per_type = scaled(2000, opts.scale, 20);
  s.k_max = 6;
  apply_options(opts, s);

  std::vector<std::vector<double>> rows;
  for (const double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    struct Worker {
      std::uint64_t successes{0};
      stats::OnlineStats utility;
      stats::OnlineStats premium;
      stats::OnlineStats survivors;
      core::RitWorkspace ws;
    };
    std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
    sim::parallel_trials(
        opts.trials, workers, [&](Worker& wk, std::uint64_t trial) {
          const sim::TrialInstance inst = sim::make_instance(s, trial);
          rng::Rng drop_rng(inst.mechanism_seed ^ 0xd20);
          const sim::DropoutResult dropped = sim::random_dropout(
              inst.tree, inst.population.truthful_asks, rate, drop_rng);
          wk.survivors.add(static_cast<double>(dropped.asks.size()));
          rng::Rng rng(inst.mechanism_seed);
          const core::RitResult r = core::run_rit(
              inst.job, dropped.asks, dropped.tree, s.mechanism, rng, wk.ws);
          if (!r.success) return;
          ++wk.successes;
          double total = 0.0;
          for (std::uint32_t i = 0; i < dropped.asks.size(); ++i) {
            total += r.utility_of(
                i, inst.population.costs[dropped.original_of[i]]);
          }
          wk.utility.add(dropped.asks.empty()
                             ? 0.0
                             : total / static_cast<double>(
                                           dropped.asks.size()));
          wk.premium.add(r.total_payment() - r.total_auction_payment());
        });
    std::uint64_t successes = 0;
    stats::OnlineStats utility;
    stats::OnlineStats premium;
    stats::OnlineStats survivors;
    for (const Worker& wk : workers) {
      successes += wk.successes;
      utility.merge(wk.utility);
      premium.merge(wk.premium);
      survivors.merge(wk.survivors);
    }
    rows.push_back({rate, survivors.mean(),
                    static_cast<double>(successes) /
                        static_cast<double>(opts.trials),
                    utility.count() ? utility.mean() : 0.0,
                    premium.count() ? premium.mean() : 0.0});
  }
  emit("Ablation — dropout between solicitation and auction", opts,
       {"dropout_rate", "survivors", "success_rate", "avg_utility",
        "premium"},
       rows);
  finish(opts);
  return 0;
}
