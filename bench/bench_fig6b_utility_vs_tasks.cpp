// Fig. 6(b): average user utility vs number of tasks per type.
// Paper setup: n = 30000, m_i = 1000..3000, H = 0.8.
// Expected shape: both series increase with the job size (more tasks mean
// higher clearing prices and more winners); RIT above the auction phase.
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig6b_utility_vs_tasks", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_task_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.avg_utility_auction.mean(),
                    p.metrics.avg_utility_rit.mean(),
                    p.metrics.avg_utility_rit.ci95_half_width(),
                    p.metrics.success_rate(),
                    p.metrics.tasks_allocated.mean()});
  }
  const std::vector<std::string> header{"m_i(paper)",    "auction_phase",
                                        "RIT",           "RIT_ci95",
                                        "success_rate",  "tasks_alloc"};
  emit("Fig. 6(b) — average user utility vs tasks per type", opts, header,
       rows);
  emit_svg("Fig. 6(b): avg user utility vs tasks per type", opts, header,
           rows, {1, 2});
  finish(opts);
  return 0;
}
