// Red-team bench: exhaustive attack search against RIT and its ablations.
//
// For each mechanism configuration, run attack::search_best_attack over a
// grid of sybil/misreport strategies and report the best expected gain the
// red team found (positive gain beyond the slack column = exploitable).
// This is the measurement version of Theorem 2, and it shows the two
// deliberately weakened arms — the deterministic price mode and the naive
// combination's own-payment amplification — lighting up red where RIT
// stays at zero.
#include <vector>

#include "attack/strategy_search.h"
#include "bench_support.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "redteam", 40);

  sim::Scenario s;
  s.num_users = scaled(5000, opts.scale, 200);
  s.num_types = 2;
  s.tasks_per_type = scaled(1500, opts.scale, 30);
  s.k_max = 6;
  apply_options(opts, s);

  const sim::TrialInstance inst = sim::make_instance(s, 0);
  // The victim: a competitive high-capacity user.
  const std::uint32_t victim = 7 % inst.population.size();
  auto asks = inst.population.truthful_asks;
  asks[victim] = core::Ask{asks[victim].type, 6, 2.0};
  const double cost = 2.0;

  attack::SearchSpace space;
  space.trials = opts.trials;
  space.threads = opts.threads;

  std::vector<std::vector<double>> rows;
  int config_index = 0;
  for (const core::PriceMode mode :
       {core::PriceMode::kConsensus, core::PriceMode::kOrderStatistic}) {
    core::RitConfig cfg = s.mechanism;
    cfg.price_mode = mode;
    const attack::SearchResult result = attack::search_best_attack(
        inst.job, asks, inst.tree, victim, cost, cfg, space);
    rows.push_back({static_cast<double>(config_index),
                    result.honest_mean, result.best().mean_utility,
                    result.best_gain(), result.gain_slack(),
                    static_cast<double>(result.best().candidate.identities),
                    result.best().candidate.ask_value});
    ++config_index;
  }
  emit("Red team — best attack found (0=RIT/consensus 1=order-statistic)",
       opts,
       {"config", "honest", "best_attack", "gain", "slack",
        "best_identities", "best_ask"},
       rows);
  finish(opts);
  return 0;
}
