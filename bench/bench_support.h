// Shared plumbing for the figure-reproduction benches.
//
// Every bench accepts the same flags:
//   --trials=N    trials per sweep point (default per bench)
//   --scale=S     divide the paper's population/job sizes by S (default 10;
//                 --scale=1 reproduces the paper's exact parameters)
//   --points=P    sweep points between the paper's endpoints (default 5)
//   --seed=X      base seed
//   --graph=K     social graph family: ba|er|ws|star|path (default ba)
//   --threads=N   worker threads for the trial fan-out (default 0 =
//                 hardware concurrency; 1 = the exact serial path,
//                 bit-for-bit). Trials are seeded independently and merged
//                 in a fixed order, so counts/min/max/success rates are
//                 identical for every N; means agree to ~1e-12 (Welford
//                 merge-order rounding — see EXPERIMENTS.md)
//   --intra-threads=N  worker threads INSIDE each trial (graph CSR sort,
//                 spanning-forest wave scan, payment prefix pass; default
//                 1; 0 = hardware concurrency). Unlike --threads this does
//                 not fan trials out — it accelerates a single huge trial,
//                 and every pass is bit-identical at any setting (see
//                 docs/scaling.md). Deliberately excluded from checkpoint
//                 identity.
//   --csv=PATH    also dump the series as CSV (default bench_results/<name>.csv,
//                 "none" disables)
//   --theoretical use the paper's literal round budget instead of
//                 run-to-completion (see DESIGN.md ambiguity #3)
//
// Robustness (see docs/robustness.md):
//   --max-trial-failures=N  tolerate up to N faulted trials per sweep point
//                           (quarantined into the fault ledger; default 0 =
//                           the first fault aborts, the historical behavior)
//   --trial-timeout-ms=T    post-hoc per-trial watchdog (0 = off)
//   --checkpoint=PATH       durable sweep checkpoint, written atomically
//   --checkpoint-every=K    also checkpoint every K trials within a point
//                           (0 = only at point boundaries)
//   --resume                resume from --checkpoint (refuses on any
//                           config/seed/thread mismatch); resumed sweeps are
//                           bit-identical to uninterrupted ones
//
// Process isolation (see docs/robustness.md, "Process isolation &
// supervision"):
//   --supervised            run each sweep point through the shard
//                           supervisor: K forked worker processes, one per
//                           residue class, monitored for signal deaths,
//                           OOM kills, and hangs. Bit-identical to the
//                           in-process engine at --threads=K.
//   --shards=K              worker processes (default 0 = hardware
//                           concurrency; replaces --threads when
//                           supervised)
//   --shard-mem-mb=M        per-shard RLIMIT_AS budget in MB (0 = off)
//   --shard-cpu-s=S         per-shard RLIMIT_CPU budget in seconds (0 = off)
//   --shard-retries=R       worker deaths tolerated per shard before the
//                           shard is quarantined and the sweep aborts
//                           (default 2); relaunches back off exponentially
//   --heartbeat-timeout-ms=T  SIGKILL a shard whose heartbeat stalls for T
//                           ms (0 = watchdog off); with --checkpoint the
//                           relaunch resumes from the shard's last cut
//
// Observability (see docs/observability.md):
//   --trace-out=PATH    write a Chrome-trace / Perfetto JSON of every span
//   --metrics-out=PATH  write the global metrics registry as JSON
//   --json=PATH         machine-readable run summary (phase breakdown +
//                       metrics; default bench_results/BENCH_<name>.json,
//                       "none" disables)
//   --json-logs         switch rit::log to the structured JSON line format
//   --perf-counters     sample hardware counters (cycles, instructions,
//                       cache/branch misses, task-clock) per phase via
//                       perf_event_open; degrades to absent fields when the
//                       syscall is unpermitted (containers, non-Linux)
//   --history-out[=P]   append this run to the perf-regression ledger
//                       (bare flag = bench/history/<name>.jsonl; compare
//                       ledgers with ritcs-bench-diff)
//
// Every bench prints a per-phase timing breakdown table at exit (finish()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/csv.h"
#include "cli/table.h"
#include "sim/guarded.h"
#include "sim/metrics.h"
#include "sim/scenario.h"

namespace rit::bench {

/// Mutable per-sweep state shared by every copy of a BenchOptions: the
/// lazily opened checkpoint session, the running grid-point index, and the
/// accumulated fault ledger that finish() reports.
struct SweepState {
  std::unique_ptr<sim::CheckpointSession> session;
  std::uint64_t next_point{0};
  sim::FaultLedger faults;
};

struct BenchOptions {
  std::uint64_t trials{3};
  double scale{10.0};
  std::uint32_t points{5};
  std::uint64_t seed{42};
  sim::GraphKind graph{sim::GraphKind::kBarabasiAlbert};
  /// Worker threads for the trial fan-out (0 = hardware concurrency,
  /// 1 = exact serial path).
  unsigned threads{0};
  /// Worker threads inside each trial (0 = hardware concurrency, 1 =
  /// serial). Bit-identical at any setting — see docs/scaling.md.
  unsigned intra_threads{1};
  std::string csv_path;  // empty = disabled
  bool theoretical{false};
  /// fig9 only: keep the paper's exact supply/demand ratio (--paper-ratio).
  bool paper_ratio{false};
  /// ablation_rounds only: use the paper's K_max = 20 regime (--paper-kmax).
  bool paper_kmax{false};

  /// Bench name (set by parse_options; keys the default output paths).
  std::string name;
  /// Chrome-trace JSON output path (--trace-out, empty = disabled).
  std::string trace_path;
  /// Metrics registry JSON output path (--metrics-out, empty = disabled).
  std::string metrics_path;
  /// Machine-readable run summary path (--json, empty = disabled).
  std::string summary_path;
  /// Perf-regression ledger path (--history-out, empty = disabled).
  std::string history_path;
  /// Sample hardware counters per phase (--perf-counters).
  bool perf_counters{false};
  /// Steady-clock ns at parse_options; finish() measures end-to-end from it.
  std::uint64_t start_ns{0};

  /// Fault tolerance (--max-trial-failures, --trial-timeout-ms); defaults
  /// preserve the historical strict behavior.
  std::uint64_t max_trial_failures{0};
  double trial_timeout_ms{0.0};
  /// Checkpoint/resume (--checkpoint, --checkpoint-every, --resume).
  std::string checkpoint_path;  // empty = disabled
  std::uint64_t checkpoint_every{0};
  bool resume{false};
  /// Process isolation (--supervised and friends); see
  /// platform::SupervisorOptions for the semantics of each knob.
  bool supervised{false};
  unsigned shards{0};
  std::uint64_t shard_mem_mb{0};
  std::uint64_t shard_cpu_s{0};
  unsigned shard_retries{2};
  std::uint64_t heartbeat_timeout_ms{0};

  /// Shared across copies: run_point() advances it, finish() reports it.
  std::shared_ptr<SweepState> sweep{std::make_shared<SweepState>()};
};

/// Parses the standard flags; `name` picks the default CSV path.
BenchOptions parse_options(int argc, char** argv, const std::string& name,
                           std::uint64_t default_trials);

/// Applies the shared knobs (graph kind, seed, budget policy) to a scenario.
void apply_options(const BenchOptions& opts, sim::Scenario& scenario);

/// `value / scale`, floored, at least `min_value`.
std::uint32_t scaled(std::uint64_t value, double scale,
                     std::uint32_t min_value = 1);

/// `points` integers evenly spaced over [lo, hi] (inclusive, deduplicated).
std::vector<std::uint32_t> linspace(std::uint32_t lo, std::uint32_t hi,
                                    std::uint32_t points);

/// Runs one sweep point (opts.trials trials of `scenario`) through the
/// guarded engine, honoring the robustness flags: faults are quarantined
/// within the failure budget, and with --checkpoint each point is durably
/// saved (and skipped on --resume when already complete). With all
/// robustness flags at their defaults this is exactly
/// sim::run_many_parallel — byte-identical output. Every bench sweep loop
/// calls this instead of run_many_parallel directly; points must be run in
/// a fixed order for the checkpoint's point index to be meaningful.
sim::AggregateMetrics run_point(
    const BenchOptions& opts, const sim::Scenario& scenario,
    const std::function<void(std::uint64_t, std::uint64_t)>& progress = {});

/// Prints the table to stdout with a title banner; writes the CSV when
/// enabled (creating the parent directory).
void emit(const std::string& title, const BenchOptions& opts,
          const std::vector<std::string>& header,
          const std::vector<std::vector<double>>& rows, int precision = 4);

/// Also renders an SVG line chart next to the CSV (same stem, .svg):
/// column 0 is x; `series_columns` picks the y columns to plot (labels from
/// the header). No-op when CSV output is disabled.
void emit_svg(const std::string& title, const BenchOptions& opts,
              const std::vector<std::string>& header,
              const std::vector<std::vector<double>>& rows,
              const std::vector<std::size_t>& series_columns);

/// End-of-run observability report: stops tracing, prints the per-phase
/// timing breakdown (self time, i.e. phases are disjoint and sum to the
/// instrumented wall time), and writes the --trace-out / --metrics-out /
/// --json artifacts that were requested. Call once at the end of main().
void finish(const BenchOptions& opts);

}  // namespace rit::bench
