// Ablation: the payment-phase discount base (Alg. 3 uses 1/2).
//
// Larger bases pay solicitors more (deeper descendants still count), at the
// cost of a larger platform premium. The budget-bound ratio premium /
// total-auction-payment stays below 1 for base 1/2 (the Sec. 7-C argument
// needs base <= 1/2 for the geometric tail to telescope below the
// contributor's own payment); this bench shows where it starts to break.
#include <vector>

#include "bench_support.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_discount", 3);

  std::vector<std::vector<double>> rows;
  for (const double base : {0.25, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    sim::Scenario s;
    s.num_users = scaled(30000, opts.scale, 200);
    s.num_types = 10;
    s.tasks_per_type = scaled(2000, opts.scale, 10);
    apply_options(opts, s);
    s.mechanism.discount_base = base;
    const sim::AggregateMetrics agg =
        run_point(opts, s);
    const double ratio =
        agg.total_payment_auction.mean() > 0.0
            ? agg.solicitation_premium.mean() /
                  agg.total_payment_auction.mean()
            : 0.0;
    rows.push_back({base, agg.avg_utility_rit.mean(),
                    agg.total_payment_rit.mean(),
                    agg.solicitation_premium.mean(), ratio});
  }
  emit("Ablation — payment-phase discount base", opts,
       {"base", "avg_utility", "total_payment", "premium",
        "premium/auction_total"},
       rows);
  finish(opts);
  return 0;
}
