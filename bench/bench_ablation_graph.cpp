// Ablation: social-graph family (the Twitter-graph substitution).
//
// The incentive tree's depth profile controls how much the payment phase
// pays out (contributions decay with absolute depth). Barabási–Albert is
// the Twitter stand-in; Erdős–Rényi and Watts–Strogatz have thinner tails;
// star is the degenerate shallow extreme; path the deep extreme.
#include <vector>

#include "bench_support.h"
#include "common/parallel.h"
#include "graph/metrics.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "sim/workload.h"
#include "stats/online_stats.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "ablation_graph", 3);

  std::vector<std::vector<double>> rows;
  std::vector<std::string> labels;
  int kind_index = 0;
  for (const sim::GraphKind kind :
       {sim::GraphKind::kBarabasiAlbert, sim::GraphKind::kErdosRenyi,
        sim::GraphKind::kWattsStrogatz, sim::GraphKind::kStar,
        sim::GraphKind::kPath}) {
    sim::Scenario s;
    s.num_users = scaled(20000, opts.scale, 200);
    s.num_types = 10;
    s.tasks_per_type = scaled(1500, opts.scale, 10);
    apply_options(opts, s);
    s.graph = kind;

    struct Worker {
      stats::OnlineStats depth;
      stats::OnlineStats tail;  // out-degree max/mean: the hub-iness proxy
    };
    std::vector<Worker> workers(rit::resolve_threads(opts.threads, opts.trials));
    sim::parallel_trials(
        opts.trials, workers, [&](Worker& wk, std::uint64_t t) {
          const sim::TrialInstance inst = sim::make_instance(s, t);
          wk.depth.add(static_cast<double>(inst.tree.max_depth()));
          rng::Rng graph_rng(s.trial_seed(t, 0));
          const graph::Graph g = sim::generate_graph(s, graph_rng);
          wk.tail.add(graph::out_degree_stats(g).max_over_mean);
        });
    stats::OnlineStats depth;
    stats::OnlineStats tail;
    for (const Worker& wk : workers) {
      depth.merge(wk.depth);
      tail.merge(wk.tail);
    }
    const sim::AggregateMetrics agg =
        run_point(opts, s);
    rows.push_back({static_cast<double>(kind_index), tail.mean(),
                    depth.mean(), agg.avg_utility_rit.mean(),
                    agg.solicitation_premium.mean(),
                    agg.total_payment_rit.mean()});
    labels.push_back(sim::to_string(kind));
    ++kind_index;
  }
  emit("Ablation — social-graph family (0=ba 1=er 2=ws 3=star 4=path)", opts,
       {"graph", "degree_tail", "tree_depth", "avg_utility", "premium",
        "total_payment"},
       rows);
  finish(opts);
  return 0;
}
