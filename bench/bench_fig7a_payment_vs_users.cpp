// Fig. 7(a): total platform payment vs number of users.
// Expected shape: roughly flat in n (the job size is fixed; cheaper prices
// offset the growing solicitation pool); RIT above the auction phase, with
// the premium bounded by the total auction payment (Sec. 7-C).
#include "figure_sweeps.h"

int main(int argc, char** argv) {
  using namespace rit::bench;
  const BenchOptions opts =
      parse_options(argc, argv, "fig7a_payment_vs_users", 3);
  std::vector<std::vector<double>> rows;
  for (const SweepPoint& p : run_user_sweep(opts)) {
    rows.push_back({static_cast<double>(p.x),
                    p.metrics.total_payment_auction.mean(),
                    p.metrics.total_payment_rit.mean(),
                    p.metrics.solicitation_premium.mean(),
                    p.metrics.success_rate()});
  }
  const std::vector<std::string> header{"users(paper)", "auction_phase",
                                        "RIT", "premium", "success_rate"};
  emit("Fig. 7(a) — total payment vs number of users", opts, header, rows, 2);
  emit_svg("Fig. 7(a): total payment vs users", opts, header, rows, {1, 2});
  finish(opts);
  return 0;
}
