// Fig. 9: total utility of a sybil attacker vs the number of identities.
//
// Paper setup: n = 10000 users, m_i ~ U(100, 500] per type, H = 0.8. A user
// P_29 with true cost 5.5 and capability K = 17 (chosen so its truthful
// auction payment is non-zero) launches random sybil attacks with
// delta = 2..17 identities, all identities asking the same value. Three ask
// values are monitored: the true cost 5.5, and the deviations 6.5 and 6.25
// (the paper's text prints both "6.25" and "6.225"; we use 6.25).
//
// Expected shape: utility decreases (never increases) with the number of
// identities, and the truthful ask value 5.5 dominates the other two —
// together demonstrating sybil-proofness and truthfulness.
//
// Supply/demand note: at the paper's exact ratio (~20x oversupply per type)
// CRA clearing prices sit far below 5.5, the designated victim is priced
// out of the auction no matter what it asks, and the three ask-value series
// coincide (pure tree rewards; still a valid sybil-proofness read-out). By
// default this bench therefore scales the demand less aggressively than
// the population (divisor scale/4) so clearing prices straddle the 5.5-6.5
// band and the truthfulness comparison is visible. Pass --paper-ratio to
// keep the verbatim ratio instead. See EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_support.h"
#include "attack/sybil_experiment.h"

int main(int argc, char** argv) {
  using namespace rit;
  using namespace rit::bench;
  const BenchOptions opts = parse_options(argc, argv, "fig9_sybil_utility", 30);

  sim::Scenario s;
  s.num_users = scaled(10000, opts.scale, 200);
  s.num_types = 10;
  const double demand_scale =
      opts.paper_ratio ? opts.scale : std::max(1.0, opts.scale / 4.0);
  s.demand_lo = scaled(100, demand_scale, 5);
  s.demand_hi = scaled(500, demand_scale, 20);
  s.k_max = 20;
  s.initial_joiners = 10;
  apply_options(opts, s);

  attack::SybilExperimentConfig config;
  config.trials = opts.trials;
  config.threads = opts.threads;

  std::vector<std::vector<double>> rows;
  for (const attack::SybilSeriesPoint& point : attack::run_sybil_experiment(s, config)) {
    std::fprintf(stderr, "  identities=%u done\n", point.identities);
    std::vector<double> row{static_cast<double>(point.identities)};
    for (const auto& series : point.utility) {
      row.push_back(series.mean());
      row.push_back(series.ci95_half_width());
    }
    row.push_back(point.honest.mean());
    row.push_back(point.honest.ci95_half_width());
    rows.push_back(std::move(row));
  }

  const std::vector<std::string> header{
      "identities", "ask=5.5(=cost)", "ci95",  "ask=6.5", "ci95",
      "ask=6.25",   "ci95",           "honest_reference", "ci95"};
  emit("Fig. 9 — sybil attacker utility vs number of identities", opts,
       header, rows);
  emit_svg("Fig. 9: sybil attacker utility vs identities", opts, header,
           rows, {1, 3, 5, 7});
  finish(opts);
  return 0;
}
