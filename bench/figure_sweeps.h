// The two parameter sweeps shared by Figs. 6-8.
//
// Fig. 6(a)/7(a)/8(a): m_i = 5000 per type, n swept over [40000, 80000]
// (step 1000 in the paper); Fig. 6(b)/7(b)/8(b): n = 30000, m_i swept over
// [1000, 3000] (step 100). Population/job sizes divide by --scale.
#pragma once

#include <cstdint>
#include <vector>

#include "bench_support.h"
#include "sim/metrics.h"

namespace rit::bench {

struct SweepPoint {
  std::uint32_t x;  // the swept parameter at paper scale (pre-division)
  sim::AggregateMetrics metrics;
};

/// Sweep the user count (the "(a)" panels).
std::vector<SweepPoint> run_user_sweep(const BenchOptions& opts);

/// Sweep the per-type demand (the "(b)" panels).
std::vector<SweepPoint> run_task_sweep(const BenchOptions& opts);

}  // namespace rit::bench
