// Ablation: consensus rounding vs a deterministic order-statistic price —
// the price of robustness.
//
// The paper's central design argument (Sec. 4-A, Lemma 6.2): a
// deterministic per-round price lets a coalition (e.g. one user's sybil
// identities) steer the clearing price, while CRA's sampled-threshold +
// consensus-count construction makes that influence vanish with high
// probability. The *manipulability* of the deterministic mode is pinned by
// deterministic unit tests (cra_test.cpp: OrderStatistic* / collusion
// tests); what this bench quantifies is what the robustness costs the
// platform in thick markets: both modes are run on identical instances
// (honest and under a split-role sybil manipulation) and the total payment
// gap is the premium the randomized price pays for collusion resistance.
#include <vector>

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "bench_support.h"
#include "common/parallel.h"
#include "core/rit.h"
#include "sim/parallel.h"
#include "sim/runner.h"
#include "stats/online_stats.h"

namespace {

using namespace rit;
using namespace rit::bench;

struct ModeResult {
  double honest_mean{0.0};
  double attack_mean{0.0};
  double gain{0.0};
  double total_payment{0.0};
};

ModeResult run_mode(const sim::Scenario& base, core::PriceMode mode,
                    std::uint64_t trials, unsigned threads) {
  sim::Scenario s = base;
  s.mechanism.price_mode = mode;
  struct Worker {
    stats::OnlineStats honest;
    stats::OnlineStats attack_stats;
    stats::OnlineStats payment;
    core::RitWorkspace ws;
  };
  std::vector<Worker> workers(rit::resolve_threads(threads, trials));
  sim::parallel_trials(
      trials, workers, [&](Worker& wk, std::uint64_t trial) {
        sim::TrialInstance inst = sim::make_instance(s, trial);
        // The attacker: a cheap high-capacity user.
        const std::uint32_t attacker = 7 % inst.population.size();
        inst.population.truthful_asks[attacker] =
            core::Ask{inst.population.truthful_asks[attacker].type, 6, 1.0};
        inst.population.costs[attacker] = 1.0;

        {
          rng::Rng rng(inst.mechanism_seed);
          const auto r =
              core::run_rit(inst.job, inst.population.truthful_asks,
                            inst.tree, s.mechanism, rng, wk.ws);
          wk.honest.add(r.utility_of(attacker, 1.0));
          wk.payment.add(r.total_payment());
        }
        {
          attack::SybilPlan plan;
          plan.victim = attacker;
          plan.identities = {{3, 1.0, attack::kOriginalParent}, {3, 9.0, 1}};
          const auto kids =
              inst.tree.children(tree::node_of_participant(attacker));
          plan.child_assignment.assign(kids.size(), 2);
          const auto attacked = attack::apply_sybil(
              inst.tree, inst.population.truthful_asks, plan);
          rng::Rng rng(inst.mechanism_seed);
          const auto r = core::run_rit(inst.job, attacked.asks, attacked.tree,
                                       s.mechanism, rng, wk.ws);
          wk.attack_stats.add(attacked.attacker_utility(r, 1.0));
        }
      });
  stats::OnlineStats honest;
  stats::OnlineStats attack_stats;
  stats::OnlineStats payment;
  for (const Worker& wk : workers) {
    honest.merge(wk.honest);
    attack_stats.merge(wk.attack_stats);
    payment.merge(wk.payment);
  }
  return ModeResult{honest.mean(), attack_stats.mean(),
                    attack_stats.mean() - honest.mean(), payment.mean()};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts =
      parse_options(argc, argv, "ablation_consensus", 40);
  sim::Scenario s;
  s.num_users = scaled(10000, opts.scale, 200);
  s.num_types = 4;
  s.tasks_per_type = scaled(4000, opts.scale, 20);
  s.k_max = 6;
  apply_options(opts, s);

  const ModeResult consensus =
      run_mode(s, core::PriceMode::kConsensus, opts.trials, opts.threads);
  const ModeResult order =
      run_mode(s, core::PriceMode::kOrderStatistic, opts.trials, opts.threads);

  emit("Ablation — consensus rounding vs deterministic order-statistic price",
       opts,
       {"mode(0=consensus,1=orderstat)", "honest_utility", "attack_utility",
        "attack_gain", "total_payment"},
       {{0.0, consensus.honest_mean, consensus.attack_mean, consensus.gain,
         consensus.total_payment},
        {1.0, order.honest_mean, order.attack_mean, order.gain,
         order.total_payment}});
  finish(opts);
  return 0;
}
