// Campaign timeline: watch a crowdsensing recruitment drive unfold in time.
//
//   build/examples/campaign_timeline [--users=N] [--accept=P] [--seed=S]
//
// A platform posts a job, seeds a handful of initial users, and lets
// word-of-mouth do the rest (discrete-event solicitation over a synthetic
// follower graph). Recruitment stops as soon as the joined users can cover
// 2x the job's demand per area (Remark 6.1), then RIT clears the market.
// The output is the recruitment curve, the stop reason, and the final
// market clearing — the DARPA Network Challenge story with a robust
// mechanism at the end of it.
#include <algorithm>
#include <iostream>

#include "cli/args.h"
#include "cli/table.h"
#include "common/format_util.h"
#include "core/rit.h"
#include "graph/generators.h"
#include "sim/dynamics.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace rit;
  cli::Args args(argc, argv);
  const auto users = static_cast<std::uint32_t>(args.get_u64("users", 20000));
  const double accept = args.get_double("accept", 0.6);
  const auto seed = args.get_u64("seed", 11);
  args.finish();

  // The recruitment pool and the job.
  rng::Rng graph_rng(seed);
  const graph::Graph social = graph::barabasi_albert(users, 3, graph_rng);
  sim::Scenario s;
  s.num_users = users;
  s.num_types = 6;
  s.k_max = 8;
  rng::Rng pop_rng(seed + 1);
  const sim::Population pop = sim::generate_population(s, pop_rng);
  const core::Job job = core::Job::uniform(6, 250);

  sim::DynamicsOptions opts;
  opts.acceptance_prob = accept;
  opts.invite_delay_mean = 1.0;    // hours
  opts.decision_delay_mean = 0.5;  // hours
  opts.seeds = {0, 1, 2, 3, 4};
  opts.supply_multiple = 2.0;      // Remark 6.1
  rng::Rng cascade_rng(seed + 2);
  const sim::DynamicsResult campaign =
      sim::simulate_solicitation(social, pop, &job, opts, cascade_rng);

  std::cout << "Recruitment campaign over a " << users
            << "-user social graph (accept=" << format_double(accept, 2)
            << ")\n\n";
  cli::Table timeline({"hour", "users_joined", "growth"});
  std::size_t prev = 0;
  const double horizon = campaign.end_time;
  for (int h = 0; h <= static_cast<int>(horizon) + 1; ++h) {
    const std::size_t now = campaign.joined_by(h);
    timeline.add_row({std::to_string(h), std::to_string(now),
                      "+" + std::to_string(now - prev)});
    prev = now;
    if (now == campaign.joined.size()) break;
  }
  timeline.print(std::cout);
  const char* reason = "cascade died out";
  switch (campaign.stop_reason) {
    case sim::DynamicsResult::StopReason::kSupplyMet:
      reason = "supply target met (2x demand per area)";
      break;
    case sim::DynamicsResult::StopReason::kMaxUsers:
      reason = "user threshold N reached";
      break;
    case sim::DynamicsResult::StopReason::kDeadline:
      reason = "deadline";
      break;
    case sim::DynamicsResult::StopReason::kCascadeDied:
      break;
  }
  std::cout << "\nrecruitment closed after "
            << format_double(campaign.end_time, 1) << " hours: " << reason
            << "\n"
            << "recruited " << campaign.joined.size() << " of " << users
            << " users; tree depth " << campaign.tree.max_depth() << "\n\n";

  // Clear the market with RIT over the recruited users.
  std::vector<core::Ask> asks;
  std::vector<double> costs;
  for (std::uint32_t u : campaign.joined) {
    asks.push_back(pop.truthful_asks[u]);
    costs.push_back(pop.costs[u]);
  }
  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng mech_rng(seed + 3);
  const core::RitResult r = core::run_rit(job, asks, campaign.tree, cfg, mech_rng);
  if (!r.success) {
    std::cout << "market clearing failed — recruit more users "
                 "(try --accept closer to 1)\n";
    return 1;
  }
  std::uint32_t workers = 0;
  for (std::uint32_t x : r.allocation) workers += x > 0 ? 1 : 0;
  std::cout << "market cleared: " << job.total_tasks() << " tasks to "
            << workers << " workers\n"
            << "platform pays " << format_double(r.total_payment(), 1)
            << " (of which " << format_double(
                   r.total_payment() - r.total_auction_payment(), 1)
            << " rewards the recruiters)\n";
  return 0;
}
