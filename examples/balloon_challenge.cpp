// The DARPA Network Challenge story from the paper's introduction.
//
//   build/examples/balloon_challenge
//
// Reenacts the MIT team's geometric referral scheme — Alice recruits Bob,
// Bob finds a $2000 balloon — and Bob's sybil attack against it, then shows
// the same attack against RIT's payment determination phase, where it earns
// the attacker strictly nothing extra.
#include <iostream>

#include "baselines/geometric_referral.h"
#include "common/format_util.h"
#include "core/payment.h"
#include "tree/incentive_tree.h"
#include "tree/render.h"

int main() {
  using namespace rit;

  std::cout << "== The 2009 DARPA Network Challenge ==\n\n";
  std::cout << "MIT scheme: a balloon finder earns $2000; every ancestor in\n"
               "the referral tree earns half of what its child earned.\n\n";

  // Honest world: platform -> Alice -> Bob. Bob finds the balloon.
  {
    const tree::IncentiveTree t = tree::IncentiveTree({0, 0, 1});
    const std::vector<double> contributions{0.0, 2000.0};
    const auto labels = [](std::uint32_t n) -> std::string {
      switch (n) {
        case 0:
          return "DARPA";
        case 1:
          return "Alice";
        default:
          return "Bob ($2000 balloon)";
      }
    };
    std::cout << tree::render_ascii(t, labels);
    const auto rewards = baselines::geometric_referral_rewards(t, contributions);
    std::cout << "  Bob earns   $" << format_double(rewards[1], 0) << "\n";
    std::cout << "  Alice earns $" << format_double(rewards[0], 0) << "\n\n";
  }

  // Sybil world: Bob splits into Bob2 (fake inviter) and Bob1 (finder).
  {
    const tree::IncentiveTree t = tree::IncentiveTree({0, 0, 1, 2});
    const std::vector<double> contributions{0.0, 0.0, 2000.0};
    const auto labels = [](std::uint32_t n) -> std::string {
      switch (n) {
        case 0:
          return "DARPA";
        case 1:
          return "Alice";
        case 2:
          return "Bob2 (fake)";
        default:
          return "Bob1 ($2000 balloon)";
      }
    };
    std::cout << "Bob launches a sybil attack:\n" << tree::render_ascii(t, labels);
    const auto rewards = baselines::geometric_referral_rewards(t, contributions);
    std::cout << "  Bob earns   $" << format_double(rewards[1] + rewards[2], 0)
              << "  (= " << format_double(rewards[2], 0) << " + "
              << format_double(rewards[1], 0) << ", was $2000 — attack pays!)\n";
    std::cout << "  Alice earns $" << format_double(rewards[0], 0)
              << "  (was $1000 — honest Alice is diluted)\n\n";
  }

  // The same two worlds under RIT's payment determination phase. The
  // balloon find is a "task" of a different type than Alice's, with an
  // auction payment of 2000; weights decay with the contributor's absolute
  // depth, and a user's own identities (same type) contribute nothing.
  std::cout << "== The same story under RIT's payment rule ==\n\n";
  const double base = 0.5;
  {
    const tree::IncentiveTree t = tree::IncentiveTree({0, 0, 1});
    const std::vector<TaskType> types{TaskType{0}, TaskType{1}};
    const std::vector<double> pa{0.0, 2000.0};
    const auto p = core::tree_payments(t, types, pa, base);
    std::cout << "honest:  Bob $" << format_double(p[1], 0) << ", Alice $"
              << format_double(p[0], 0) << " (Bob at depth 2: Alice gets "
              << "(1/2)^2 * 2000)\n";
  }
  {
    const tree::IncentiveTree t = tree::IncentiveTree({0, 0, 1, 2});
    // Alice keeps her own task type; both of Bob's identities necessarily
    // share Bob's type (Sec. 3-B).
    const std::vector<TaskType> types{TaskType{0}, TaskType{1}, TaskType{1}};
    const std::vector<double> pa{0.0, 0.0, 2000.0};
    const auto p = core::tree_payments(t, types, pa, base);
    std::cout << "sybil:   Bob $" << format_double(p[1] + p[2], 0)
              << " (Bob1+Bob2 — identities share Bob's type, so they feed "
                 "him nothing)\n";
    std::cout << "         Alice $" << format_double(p[0], 0)
              << " (the finder sank to depth 3: dilution hurts the "
                 "attacker's subtree, not just Alice)\n\n";
  }
  std::cout << "Under RIT, splitting can only push your own contributors\n"
               "deeper (halving their value to you) — the DARPA attack is\n"
               "structurally unprofitable (Lemma 6.4).\n";
  return 0;
}
