// Payment audit trail: run a campaign, save the full record, explain a
// user's payment, verify the record — and watch the audit catch tampering.
//
//   build/examples/payment_audit [--users=N] [--seed=S]
//
// This is the operational story of core/audit.h + core/result_io.h: a
// platform that pays real money keeps a bit-exact record of every run and
// can prove, later, that every cent re-derives from the recorded sealed
// bids and tree.
#include <iostream>

#include "cli/args.h"
#include "common/format_util.h"
#include "core/audit.h"
#include "core/result_io.h"
#include "core/rit.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace rit;
  cli::Args args(argc, argv);
  const auto users = static_cast<std::uint32_t>(args.get_u64("users", 2000));
  const auto seed = args.get_u64("seed", 3);
  args.finish();

  sim::Scenario s;
  s.num_users = users;
  s.num_types = 4;
  s.tasks_per_type = 60;
  s.k_max = 6;
  s.seed = seed;

  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  core::ExperimentRecord record;
  record.job = inst.job;
  record.asks = inst.population.truthful_asks;
  record.tree_parents = inst.tree.parents();
  record.discount_base = s.mechanism.discount_base;
  record.result = core::run_rit(inst.job, inst.population.truthful_asks,
                                inst.tree, s.mechanism, rng);
  if (!record.result.success) {
    std::cout << "allocation failed for this seed; try another --seed\n";
    return 1;
  }

  std::cout << "1. Run recorded: " << users << " users, "
            << inst.job.total_tasks() << " tasks, total payment "
            << format_double(record.result.total_payment(), 2) << "\n\n";

  // Explain the best-earning recruiter's payment.
  std::uint32_t star_user = 0;
  for (std::uint32_t j = 1; j < users; ++j) {
    if (record.result.payment[j] - record.result.auction_payment[j] >
        record.result.payment[star_user] -
            record.result.auction_payment[star_user]) {
      star_user = j;
    }
  }
  std::vector<TaskType> types(users);
  for (std::uint32_t j = 0; j < users; ++j) types[j] = record.asks[j].type;
  std::cout << "2. Why is the top recruiter paid what it is paid?\n"
            << core::explain_payment(inst.tree, types,
                                     record.result.auction_payment,
                                     record.discount_base, star_user)
                   .render()
            << "\n";

  // Verify the record.
  const core::AuditReport clean = core::audit_payments(
      inst.tree, record.asks, record.result, record.discount_base);
  std::cout << "3. Audit of the honest record: "
            << (clean.ok ? "OK" : "VIOLATIONS") << "\n\n";

  // Tamper with it and audit again.
  core::ExperimentRecord tampered = record;
  tampered.result.payment[star_user] += 100.0;
  const core::AuditReport caught = core::audit_payments(
      inst.tree, tampered.asks, tampered.result, tampered.discount_base);
  std::cout << "4. Audit after skimming 100.0 into P" << star_user + 1
            << "'s payment: " << (caught.ok ? "MISSED (bug!)" : "CAUGHT")
            << "\n";
  for (const std::string& v : caught.violations) std::cout << "   " << v << "\n";
  return caught.ok ? 1 : 0;
}
