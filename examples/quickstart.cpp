// Quickstart: the RIT mechanism end to end on a six-user instance small
// enough to read every number.
//
//   build/examples/quickstart
//
// Walks through: defining a job, collecting sealed asks, building the
// incentive tree, running RIT, and interpreting allocations / payments /
// utilities.
#include <iostream>

#include "cli/table.h"
#include "common/format_util.h"
#include "core/rit.h"
#include "rng/rng.h"
#include "tree/incentive_tree.h"
#include "tree/render.h"

int main() {
  using namespace rit;

  // A sensing job over two areas (task types): 3 tasks in area A, 2 in B.
  const core::Job job(std::vector<std::uint32_t>{3, 2});

  // Six users joined through solicitation:
  //   platform -> {P1, P2}; P1 -> {P3, P4}; P2 -> {P5}; P4 -> {P6}
  // (P1 recruited P3 and P4; P2 recruited P5; P4 recruited P6.)
  const tree::IncentiveTree tree({0, 0, 0, 1, 1, 2, 4});
  std::cout << "Incentive tree:\n" << tree::render_ascii(tree) << "\n";

  // Sealed asks (t_j, k_j, a_j): task type, capability, per-task price.
  // Everyone here asks its true cost — RIT makes that the smart move.
  const std::vector<core::Ask> asks{
      {TaskType{0}, 2, 1.8},  // P1
      {TaskType{1}, 1, 4.0},  // P2
      {TaskType{0}, 2, 2.4},  // P3
      {TaskType{1}, 2, 3.1},  // P4
      {TaskType{0}, 1, 3.3},  // P5
      {TaskType{0}, 2, 2.0},  // P6
  };

  core::RitConfig config;
  config.h = 0.8;  // truthful + sybil-proof with probability >= 0.8
  // A six-user auction cannot satisfy the consensus round budget (Remark
  // 6.1 wants K_max << m_i); let the rounds run until the job is filled.
  config.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;

  rng::Rng rng(7);  // all randomness is explicit; rerun -> same output
  const core::RitResult result = core::run_rit(job, asks, tree, config, rng);

  if (!result.success) {
    std::cout << "the job could not be fully allocated; all payments are 0\n";
    return 0;
  }

  cli::Table table({"user", "type", "ask", "tasks", "auction_pay",
                    "final_pay", "utility"});
  for (std::uint32_t j = 0; j < asks.size(); ++j) {
    table.add_row({
        "P" + std::to_string(j + 1),
        "area-" + std::string(asks[j].type.value == 0 ? "A" : "B"),
        format_double(asks[j].value, 2),
        std::to_string(result.allocation[j]),
        format_double(result.auction_payment[j], 2),
        format_double(result.payment[j], 2),
        format_double(result.utility_of(j, asks[j].value), 2),
    });
  }
  table.print(std::cout);

  std::cout << "\nTotal platform payment: "
            << format_double(result.total_payment(), 2)
            << " (auction part " << format_double(result.total_auction_payment(), 2)
            << ", solicitation premium "
            << format_double(result.total_payment() -
                                 result.total_auction_payment(),
                             2)
            << ")\n";
  std::cout << "Recruiters whose recruits won tasks in the *other* area "
               "(here P1 and P4)\nearn more than their auction payment: the "
               "difference is the depth-discounted\nshare of those "
               "descendants' auction payments.\n";
  return 0;
}
