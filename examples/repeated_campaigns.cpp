// A season of campaigns: the platform façade end to end.
//
//   build/examples/repeated_campaigns [--months=N] [--users=U] [--seed=S]
//
// A platform runs one sensing campaign per month against the same user
// base: recruit (growth-controlled per Remark 6.1), clear (mandatory
// audit), settle into a single money ledger. At the end: the season's
// books — per-campaign spend, cumulative outflow, the best-earning
// accounts — all conserved to the cent by construction.
#include <algorithm>
#include <iostream>
#include <numeric>
#include <vector>

#include "cli/args.h"
#include "cli/table.h"
#include "common/format_util.h"
#include "platform/campaign.h"

int main(int argc, char** argv) {
  using namespace rit;
  cli::Args args(argc, argv);
  const auto months = static_cast<std::uint32_t>(args.get_u64("months", 6));
  const auto users = static_cast<std::uint32_t>(args.get_u64("users", 8000));
  const auto seed = args.get_u64("seed", 2026);
  args.finish();

  platform::Ledger ledger;
  cli::Table season({"campaign", "recruited", "tasks", "spend", "premium"});
  double total_spend = 0.0;

  for (std::uint32_t month = 0; month < months; ++month) {
    platform::CampaignConfig cfg;
    cfg.scenario.num_users = users;
    cfg.scenario.num_types = 6;
    // Seasonal demand: heavier in the middle of the season.
    cfg.scenario.tasks_per_type =
        120 + 60 * std::min(month, months - 1 - month);
    cfg.scenario.k_max = 8;
    cfg.scenario.seed = seed + month;  // fresh asks/graph each month
    cfg.mode = platform::SolicitationMode::kGrowth;
    cfg.supply_multiple = 2.0;

    platform::Campaign campaign(cfg, "month-" + std::to_string(month + 1));
    campaign.recruit();
    const core::RitResult& r = campaign.clear();
    if (!r.success) {
      season.add_row({campaign.tag(), std::to_string(campaign.num_participants()),
                      "-", "FAILED", "-"});
      continue;
    }
    campaign.settle(ledger);
    const double premium = r.total_payment() - r.total_auction_payment();
    total_spend += r.total_payment();
    season.add_row({campaign.tag(),
                    std::to_string(campaign.num_participants()),
                    std::to_string(campaign.job().total_tasks()),
                    format_double(r.total_payment(), 1),
                    format_double(premium, 1)});
  }
  season.print(std::cout);

  std::cout << "\nledger: " << ledger.num_transactions()
            << " transactions, outflow "
            << format_double(ledger.platform_outflow(), 1)
            << (ledger.balanced() ? " (balanced)" : " (IMBALANCED!)") << "\n";
  std::cout << "cross-check vs mechanism totals: "
            << format_double(total_spend, 1) << "\n\n";

  // The season's top earners across all campaigns.
  std::vector<std::pair<platform::AccountId, double>> balances;
  for (const platform::Transaction& t : ledger.transactions()) {
    auto it = std::find_if(balances.begin(), balances.end(),
                           [&](const auto& p) { return p.first == t.account; });
    if (it == balances.end()) {
      balances.emplace_back(t.account, t.amount);
    } else {
      it->second += t.amount;
    }
  }
  std::sort(balances.begin(), balances.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  cli::Table top({"account", "season_earnings"});
  for (std::size_t i = 0; i < 5 && i < balances.size(); ++i) {
    top.add_row({"user-" + std::to_string(balances[i].first),
                 format_double(balances[i].second, 2)});
  }
  std::cout << "top season earners:\n";
  top.print(std::cout);
  return 0;
}
