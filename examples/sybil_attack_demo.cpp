// Section 4 live: why "truthful auction + sybil-proof incentive tree" is
// not a robust mechanism, and how RIT repairs it.
//
//   build/examples/sybil_attack_demo [--trials=N]
//
// Part 1 replays the paper's Fig. 2 counterexample (a sybil attack that
// manipulates the k-th price) and Fig. 3 counterexample (overbidding that
// the naive tree turns profitable) with exact numbers.
// Part 2 runs the same manipulations against RIT on a larger instance and
// reports expected utilities over many seeds.
#include <iostream>

#include "attack/sybil_apply.h"
#include "attack/sybil_plan.h"
#include "baselines/naive_combo.h"
#include "cli/args.h"
#include "common/format_util.h"
#include "core/rit.h"
#include "stats/online_stats.h"
#include "tree/builders.h"

namespace {

using namespace rit;

void fig2_demo() {
  std::cout << "-- Fig. 2: auctions break tree sybil-proofness --\n";
  // chain platform -> P1 -> P2 -> P3; job: two tasks of one type.
  const core::Job job(std::vector<std::uint32_t>{2});
  const std::vector<core::Ask> truthful{
      {TaskType{0}, 2, 2.0}, {TaskType{0}, 1, 3.0}, {TaskType{0}, 1, 5.0}};
  const tree::IncentiveTree t = tree::chain_tree(3);

  const auto honest = baselines::run_naive_combo(job, truthful, t);
  std::cout << "honest P1: wins " << honest.allocation[0] << " tasks, paid "
            << format_double(honest.payment[0], 2) << ", utility "
            << format_double(honest.utility_of(0, 2.0), 2) << "\n";

  attack::SybilPlan plan;
  plan.victim = 0;
  plan.identities = {{1, 2.0, attack::kOriginalParent}, {1, 6.0, 1}};
  plan.child_assignment = {2};
  const auto attacked = attack::apply_sybil(t, truthful, plan);
  const auto after = baselines::run_naive_combo(job, attacked.asks, attacked.tree);
  double utility = 0.0;
  for (std::uint32_t p : attacked.identity_participants) {
    utility += after.utility_of(p, 2.0);
  }
  std::cout << "sybil P1 (P11 asks 2, P12 asks 6 to inflate the price): "
            << "utility " << format_double(utility, 2)
            << "  <-- attack profits under the naive combination\n\n";
}

void fig3_demo() {
  std::cout << "-- Fig. 3: trees break auction truthfulness --\n";
  const core::Job job(std::vector<std::uint32_t>{2});
  std::vector<core::Ask> asks{{TaskType{0}, 1, 5.0},
                              {TaskType{0}, 1, 4.0},
                              {TaskType{0}, 1, 5.0},
                              {TaskType{0}, 1, 4.0}};
  const tree::IncentiveTree t = tree::flat_tree(4);

  const auto honest = baselines::run_naive_combo(job, asks, t);
  std::cout << "P1 bids its cost 5.0:  utility "
            << format_double(honest.utility_of(0, 5.0), 2) << "\n";
  asks[0].value = 3.9;
  const auto shaded = baselines::run_naive_combo(job, asks, t);
  std::cout << "P1 shades to 3.9:      utility "
            << format_double(shaded.utility_of(0, 5.0), 2)
            << "  <-- overbidding-to-win profits (tree doubles own payment)"
            << "\n\n";
}

void rit_contrast(std::uint64_t trials) {
  std::cout << "-- The same manipulations against RIT (" << trials
            << " seeds) --\n";
  rng::Rng setup(17);
  const std::uint32_t n = 300;
  std::vector<core::Ask> asks;
  for (std::uint32_t j = 0; j < n; ++j) {
    asks.push_back(core::Ask{TaskType{0},
                             static_cast<std::uint32_t>(setup.uniform_int(1, 3)),
                             setup.uniform_real_left_open(0.0, 10.0)});
  }
  const std::uint32_t attacker = 7;
  asks[attacker] = core::Ask{TaskType{0}, 6, 2.0};
  const core::Job job(std::vector<std::uint32_t>{100});
  const auto t = tree::random_recursive_tree(n, 0.1, setup);

  attack::SybilPlan plan;
  plan.victim = attacker;
  plan.identities = {{3, 2.0, attack::kOriginalParent}, {3, 9.5, 1}};
  const auto kids = t.children(tree::node_of_participant(attacker));
  plan.child_assignment.assign(kids.size(), 2);
  const auto attacked = attack::apply_sybil(t, asks, plan);

  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  stats::OnlineStats honest;
  stats::OnlineStats dishonest;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const std::uint64_t seed = 0x600d + trial;
    {
      rng::Rng rng(seed);
      const auto r = core::run_rit(job, asks, t, cfg, rng);
      honest.add(r.utility_of(attacker, 2.0));
    }
    {
      rng::Rng rng(seed);
      const auto r = core::run_rit(job, attacked.asks, attacked.tree, cfg, rng);
      dishonest.add(attacked.attacker_utility(r, 2.0));
    }
  }
  std::cout << "E[utility | honest]           = "
            << format_double(honest.mean(), 3) << " +- "
            << format_double(honest.ci95_half_width(), 3) << "\n";
  std::cout << "E[utility | sybil+overbid]    = "
            << format_double(dishonest.mean(), 3) << " +- "
            << format_double(dishonest.ci95_half_width(), 3)
            << "  <-- no profit under RIT\n";
}

}  // namespace

int main(int argc, char** argv) {
  cli::Args args(argc, argv);
  const auto trials = args.get_u64("trials", 300);
  args.finish();
  fig2_demo();
  fig3_demo();
  rit_contrast(trials);
  return 0;
}
