// Spectrum sensing: the paper's motivating domain (Sec. 3-A) at realistic
// scale.
//
//   build/examples/spectrum_sensing [--users=N] [--areas=M] [--pois=P]
//                                   [--seed=S]
//
// A spectrum regulator needs the occupancy of P points of interest measured
// in each of M metropolitan areas. Smartphone users spread the job through
// their (synthetic Twitter-like) social network; RIT pays them for sensing
// and for recruiting. The example reports platform cost, the solicitation
// premium, the utility distribution, and the most successful recruiters.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "cli/args.h"
#include "cli/table.h"
#include "common/format_util.h"
#include "core/rit.h"
#include "sim/runner.h"
#include "stats/histogram.h"

int main(int argc, char** argv) {
  using namespace rit;
  cli::Args args(argc, argv);
  const auto users = static_cast<std::uint32_t>(args.get_u64("users", 5000));
  const auto areas = static_cast<std::uint32_t>(args.get_u64("areas", 8));
  const auto pois = static_cast<std::uint32_t>(args.get_u64("pois", 150));
  const auto seed = args.get_u64("seed", 1);
  args.finish();

  sim::Scenario s;
  s.num_users = users;
  s.num_types = areas;        // one task type per metropolitan area
  s.tasks_per_type = pois;    // one task per point of interest
  s.k_max = 12;               // a phone can cover up to 12 POIs
  s.cost_max = 10.0;          // per-POI cost: battery, data, time
  s.seed = seed;
  s.initial_joiners = 8;

  std::cout << "Spectrum sensing campaign: " << users << " users, " << areas
            << " areas x " << pois << " POIs\n\n";

  const sim::TrialInstance inst = sim::make_instance(s, 0);
  rng::Rng rng(inst.mechanism_seed);
  const core::RitResult r =
      core::run_rit(inst.job, inst.population.truthful_asks, inst.tree,
                    s.mechanism, rng);
  if (!r.success) {
    std::cout << "allocation failed: recruit more users (Remark 6.1 needs "
                 "supply >= 2x demand per area)\n";
    return 1;
  }

  std::uint64_t sensors = 0;
  for (std::uint32_t x : r.allocation) sensors += x > 0 ? 1 : 0;
  std::cout << "POIs covered:            " << inst.job.total_tasks() << "\n";
  std::cout << "active sensors:          " << sensors << "\n";
  std::cout << "platform cost:           " << format_double(r.total_payment(), 1)
            << "\n";
  std::cout << "  sensing payments:      "
            << format_double(r.total_auction_payment(), 1) << "\n";
  std::cout << "  solicitation premium:  "
            << format_double(r.total_payment() - r.total_auction_payment(), 1)
            << "\n";
  std::cout << "robustness:              truthful & sybil-proof w.p. >= "
            << format_double(s.mechanism.h, 2)
            << (r.probability_degraded ? "  [budget degraded: see DESIGN.md]"
                                       : "")
            << "\n\n";

  stats::Histogram hist(0.0, 10.0, 10);
  for (std::uint32_t j = 0; j < users; ++j) {
    const double u = r.utility_of(j, inst.population.costs[j]);
    if (u > 0.0) hist.add(u);
  }
  std::cout << "Utility distribution over the " << hist.count()
            << " users with positive utility:\n"
            << hist.render(40) << "\n";

  // Top recruiters: largest tree reward (payment minus auction payment).
  std::vector<std::uint32_t> order(users);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return (r.payment[a] - r.auction_payment[a]) >
           (r.payment[b] - r.auction_payment[b]);
  });
  cli::Table top({"recruiter", "subtree_size", "depth", "tree_reward",
                  "auction_pay"});
  for (std::uint32_t i = 0; i < 5 && i < users; ++i) {
    const std::uint32_t j = order[i];
    const std::uint32_t node = tree::node_of_participant(j);
    top.add_row({"P" + std::to_string(j + 1),
                 std::to_string(inst.tree.subtree_size(node) - 1),
                 std::to_string(inst.tree.depth(node)),
                 format_double(r.payment[j] - r.auction_payment[j], 2),
                 format_double(r.auction_payment[j], 2)});
  }
  std::cout << "Top recruiters by solicitation reward:\n";
  top.print(std::cout);
  return 0;
}
