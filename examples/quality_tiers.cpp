// Quality-aware crowdsensing (the paper's future-work direction, built by
// reduction — see src/extensions/quality_aware.h).
//
//   build/examples/quality_tiers [--users=N] [--seed=S]
//
// An air-quality agency needs reference-grade measurements at some sites
// and is happy with consumer-grade phones elsewhere. Users carry
// platform-certified sensor tiers; each area's demand is split by tier and
// RIT runs on the refined types, so cheap low-tier users can never win
// reference-grade work — while every robustness guarantee carries over
// unchanged.
#include <iostream>

#include "cli/args.h"
#include "cli/table.h"
#include "common/format_util.h"
#include "extensions/quality_aware.h"
#include "rng/rng.h"
#include "tree/builders.h"

int main(int argc, char** argv) {
  using namespace rit;
  cli::Args args(argc, argv);
  const auto users = static_cast<std::uint32_t>(args.get_u64("users", 3000));
  const auto seed = args.get_u64("seed", 5);
  args.finish();

  // Two monitoring areas; per area: 40 consumer-grade + 10 reference-grade
  // measurements.
  ext::QualityJob qjob;
  qjob.areas = 2;
  qjob.tiers = 2;
  qjob.demand = {40, 10, 40, 10};
  ext::QualityTiers tiers;
  tiers.boundaries = {0.0, 0.8};  // tier 1 = certified quality >= 0.8

  rng::Rng setup(seed);
  std::vector<core::Ask> asks;
  std::vector<double> qualities;
  std::uint32_t reference_grade = 0;
  for (std::uint32_t j = 0; j < users; ++j) {
    const double quality = setup.uniform01();
    qualities.push_back(quality);
    if (quality >= 0.8) ++reference_grade;
    asks.push_back(core::Ask{
        TaskType{static_cast<std::uint32_t>(setup.uniform_index(2))},
        static_cast<std::uint32_t>(setup.uniform_int(1, 4)),
        setup.uniform_real_left_open(0.0, 10.0)});
  }
  const auto tree = tree::random_recursive_tree(users, 0.1, setup);

  std::cout << users << " users (" << reference_grade
            << " hold reference-grade sensors); job: 2 areas x (40 consumer"
               " + 10 reference) measurements\n\n";

  core::RitConfig cfg;
  cfg.round_budget_policy = core::RoundBudgetPolicy::kRunToCompletion;
  rng::Rng rng(seed + 1);
  const core::RitResult r =
      ext::run_quality_aware_rit(qjob, asks, qualities, tiers, tree, cfg, rng);
  if (!r.success) {
    std::cout << "allocation failed — recruit more reference-grade users\n";
    return 1;
  }

  // Tally winners by tier.
  cli::Table t({"tier", "winners", "tasks", "paid"});
  for (std::uint32_t tier = 0; tier < 2; ++tier) {
    std::uint32_t winners = 0;
    std::uint64_t tasks = 0;
    double paid = 0.0;
    for (std::uint32_t j = 0; j < users; ++j) {
      if (tiers.tier_of(qualities[j]) != tier || r.allocation[j] == 0) {
        continue;
      }
      ++winners;
      tasks += r.allocation[j];
      paid += r.payment[j];
    }
    t.add_row({tier == 0 ? "consumer" : "reference", std::to_string(winners),
               std::to_string(tasks), format_double(paid, 2)});
  }
  t.print(std::cout);
  std::cout << "\nEvery reference-grade task went to a certified >=0.8 "
               "sensor; the guarantees\n(truthfulness, sybil-proofness, IR) "
               "are inherited because the refined instance\nruns the "
               "unmodified mechanism.\n";
  return 0;
}
